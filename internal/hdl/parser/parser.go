// Package parser builds LiveHDL ASTs from token streams.
//
// It is a hand-written recursive-descent parser with precedence climbing
// for expressions, covering the synthesizable Verilog subset the paper's
// PGAS RISC-V benchmark is written in: modules with parameters, vector and
// memory declarations, continuous assigns, always @(posedge)/@(*) blocks
// with if/case, module instantiation, concatenation/replication, part
// selects, and $signed/$unsigned.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/lexer"
	"livesim/internal/hdl/token"
)

// Error is a parse error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	i    int
}

// ParseFile parses a whole (already preprocessed) source file.
func ParseFile(file, src string) (*ast.SourceFile, error) {
	p := &parser{toks: lexer.Tokenize(file, src)}
	sf := &ast.SourceFile{Name: file}
	for p.cur().Kind != token.EOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		sf.Modules = append(sf.Modules, m)
	}
	return sf, nil
}

// ParseModule parses a single module definition from src.
func ParseModule(file, src string) (*ast.Module, error) {
	sf, err := ParseFile(file, src)
	if err != nil {
		return nil, err
	}
	if len(sf.Modules) != 1 {
		return nil, fmt.Errorf("%s: expected exactly one module, found %d", file, len(sf.Modules))
	}
	return sf.Modules[0], nil
}

// ParseExpr parses a standalone expression (used by tests and by parameter
// override strings).
func ParseExpr(src string) (ast.Expr, error) {
	p := &parser{toks: lexer.Tokenize("", src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != token.EOF {
		return nil, p.errf("trailing input after expression: %s", p.cur())
	}
	return e, nil
}

func (p *parser) cur() token.Token { return p.toks[p.i] }
func (p *parser) peek() token.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.cur().Kind != k {
		return token.Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------- modules

func (p *parser) parseModule() (*ast.Module, error) {
	kw, err := p.expect(token.KwModule)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	m := &ast.Module{Name: name.Text, Pos: kw.Pos}

	// Parameter list: #(parameter A = 1, parameter B = 2)
	if p.accept(token.Hash) {
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		for {
			p.accept(token.KwParameter) // keyword optional after first
			pn, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			prm := &ast.Param{Name: pn.Text, Pos: pn.Pos}
			if p.accept(token.Assign) {
				prm.Default, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			m.Params = append(m.Params, prm)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
	}

	// Port list (ANSI style only).
	if p.accept(token.LParen) {
		if !p.accept(token.RParen) {
			var last ast.Port
			for {
				port, err := p.parsePort(&last)
				if err != nil {
					return nil, err
				}
				m.Ports = append(m.Ports, port)
				last = *port
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}

	for p.cur().Kind != token.KwEndmodule {
		if p.cur().Kind == token.EOF {
			return nil, p.errf("missing endmodule for module %s", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	end := p.next() // endmodule
	m.End = token.Pos{File: end.Pos.File, Offset: end.Pos.Offset + len(end.Text),
		Line: end.Pos.Line, Col: end.Pos.Col + len(end.Text)}
	return m, nil
}

// parsePort parses one ANSI port declaration; when direction/width are
// omitted they are inherited from the previous port (Verilog list style).
func (p *parser) parsePort(last *ast.Port) (*ast.Port, error) {
	port := &ast.Port{Pos: p.cur().Pos}
	switch p.cur().Kind {
	case token.KwInput:
		p.next()
		port.Dir = ast.Input
	case token.KwOutput:
		p.next()
		port.Dir = ast.Output
	case token.KwInout:
		p.next()
		port.Dir = ast.Inout
	case token.Ident:
		// Inherit direction and range from previous port.
		port.Dir = last.Dir
		port.Range = last.Range
		port.IsReg = last.IsReg
		port.Signed = last.Signed
		n := p.next()
		port.Name = n.Text
		return port, nil
	default:
		return nil, p.errf("expected port declaration, found %s", p.cur())
	}
	if p.accept(token.KwReg) {
		port.IsReg = true
	} else {
		p.accept(token.KwWire)
	}
	if p.accept(token.KwSigned) {
		port.Signed = true
	}
	var err error
	port.Range, err = p.parseOptRange()
	if err != nil {
		return nil, err
	}
	n, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	port.Name = n.Text
	return port, nil
}

func (p *parser) parseOptRange() (*ast.Range, error) {
	if p.cur().Kind != token.LBrack {
		return nil, nil
	}
	p.next()
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RBrack); err != nil {
		return nil, err
	}
	return &ast.Range{MSB: msb, LSB: lsb}, nil
}

// ---------------------------------------------------------------- items

func (p *parser) parseItem() ([]ast.Item, error) {
	one := func(it ast.Item, err error) ([]ast.Item, error) {
		if err != nil {
			return nil, err
		}
		return []ast.Item{it}, nil
	}
	switch p.cur().Kind {
	case token.KwWire, token.KwReg, token.KwInteger:
		return p.parseNetDecl()
	case token.KwParameter, token.KwLocalparam:
		return one(p.parseLocalParam())
	case token.KwAssign:
		return one(p.parseContAssign())
	case token.KwAlways:
		return one(p.parseAlways())
	case token.Ident:
		return one(p.parseInstance())
	case token.Semi:
		p.next()
		return nil, nil
	default:
		return nil, p.errf("unexpected %s at module level", p.cur())
	}
}

// parseNetDecl handles: wire/reg/integer [signed] [range] name [array] [= init] {, name ...} ;
// Multi-name declarations are returned as the first decl; the rest are
// queued by rewriting — to keep the interface simple we expand them into a
// synthetic item list via a small buffer.
func (p *parser) parseNetDecl() ([]ast.Item, error) {
	kindTok := p.next()
	var kind ast.NetKind
	switch kindTok.Kind {
	case token.KwWire:
		kind = ast.Wire
	case token.KwReg:
		kind = ast.Reg
	case token.KwInteger:
		kind = ast.Integer
	}
	signed := p.accept(token.KwSigned)
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	var decls []ast.Item
	for {
		n, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		d := &ast.NetDecl{Kind: kind, Name: n.Text, Range: rng, Signed: signed, Pos: n.Pos}
		d.Array, err = p.parseOptRange()
		if err != nil {
			return nil, err
		}
		if p.accept(token.Assign) {
			d.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *parser) parseLocalParam() (ast.Item, error) {
	p.next() // parameter | localparam
	n, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.LocalParam{Name: n.Text, Value: v, Pos: n.Pos}, nil
}

func (p *parser) parseContAssign() (ast.Item, error) {
	kw := p.next() // assign
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ContAssign{LHS: lhs, RHS: rhs, Pos: kw.Pos}, nil
}

func (p *parser) parseAlways() (ast.Item, error) {
	kw := p.next() // always
	if _, err := p.expect(token.At); err != nil {
		return nil, err
	}
	blk := &ast.AlwaysBlock{Pos: kw.Pos}
	if p.accept(token.Star) {
		blk.Edge = ast.Comb
	} else {
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		switch p.cur().Kind {
		case token.Star:
			p.next()
			blk.Edge = ast.Comb
		case token.KwPosedge, token.KwNegedge:
			if p.next().Kind == token.KwPosedge {
				blk.Edge = ast.Posedge
			} else {
				blk.Edge = ast.Negedge
			}
			clk, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			blk.Clock = clk.Text
		default:
			// Plain sensitivity list: treat as combinational.
			blk.Edge = ast.Comb
			for p.cur().Kind == token.Ident {
				p.next()
				if !p.accept(token.Comma) && p.cur().Kind == token.Ident {
					break
				}
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	blk.Body = body
	return blk, nil
}

func (p *parser) parseInstance() (ast.Item, error) {
	mod := p.next() // module name
	inst := &ast.Instance{ModName: mod.Text, Pos: mod.Pos}
	if p.accept(token.Hash) {
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		conns, err := p.parseConnList()
		if err != nil {
			return nil, err
		}
		inst.Params = conns
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
	}
	n, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	inst.Name = n.Text
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != token.RParen {
		inst.Conns, err = p.parseConnList()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return inst, nil
}

func (p *parser) parseConnList() ([]ast.NamedConn, error) {
	var conns []ast.NamedConn
	for {
		var c ast.NamedConn
		c.Pos = p.cur().Pos
		if p.accept(token.Dot) {
			n, err := p.expect(token.Ident)
			if err != nil {
				return nil, err
			}
			c.Name = n.Text
			if _, err := p.expect(token.LParen); err != nil {
				return nil, err
			}
			if p.cur().Kind != token.RParen {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Expr = e
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Expr = e
		}
		conns = append(conns, c)
		if !p.accept(token.Comma) {
			return conns, nil
		}
	}
}

// ---------------------------------------------------------------- stmts

func (p *parser) parseStmt() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.KwBegin:
		pos := p.next().Pos
		blk := &ast.Block{Pos: pos}
		for !p.accept(token.KwEnd) {
			if p.cur().Kind == token.EOF {
				return nil, p.errf("missing end")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		return blk, nil

	case token.KwIf:
		pos := p.next().Pos
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		node := &ast.If{Cond: cond, Then: then, Pos: pos}
		if p.accept(token.KwElse) {
			node.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return node, nil

	case token.KwCase, token.KwCasez:
		return p.parseCase()

	case token.SysIdent:
		t := p.next()
		sc := &ast.SysCall{Name: t.Text, Pos: t.Pos}
		if p.accept(token.LParen) {
			for p.cur().Kind != token.RParen {
				if p.cur().Kind == token.String {
					s := p.next()
					sc.Args = append(sc.Args, &ast.Ident{Name: s.Text, Pos: s.Pos})
				} else {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					sc.Args = append(sc.Args, e)
				}
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.RParen); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return sc, nil

	case token.Semi:
		p.next()
		return &ast.Block{}, nil

	default:
		return p.parseAssignStmt()
	}
}

func (p *parser) parseAssignStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	node := &ast.Assign{LHS: lhs, Pos: pos}
	switch p.cur().Kind {
	case token.Assign:
		p.next()
	case token.NbAssign:
		p.next()
		node.NonBlocking = true
	default:
		return nil, p.errf("expected = or <= in assignment, found %s", p.cur())
	}
	node.RHS, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) parseCase() (ast.Stmt, error) {
	kw := p.next()
	node := &ast.Case{Casez: kw.Kind == token.KwCasez, Pos: kw.Pos}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var err error
	node.Subject, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	for !p.accept(token.KwEndcase) {
		if p.cur().Kind == token.EOF {
			return nil, p.errf("missing endcase")
		}
		var item ast.CaseItem
		if p.accept(token.KwDefault) {
			p.accept(token.Colon)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.accept(token.Comma) {
					break
				}
			}
			if _, err := p.expect(token.Colon); err != nil {
				return nil, err
			}
		}
		item.Body, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
		node.Items = append(node.Items, item)
	}
	return node, nil
}

// ---------------------------------------------------------------- exprs

// Binary operator precedence, higher binds tighter. Mirrors Verilog.
func binPrec(k token.Kind) int {
	switch k {
	case token.PipePipe:
		return 1
	case token.AmpAmp:
		return 2
	case token.Pipe:
		return 3
	case token.Caret:
		return 4
	case token.Amp:
		return 5
	case token.EqEq, token.BangEq:
		return 6
	case token.Lt, token.NbAssign, token.Gt, token.GtEq:
		return 7
	case token.Shl, token.Shr, token.Sshr:
		return 8
	case token.Plus, token.Minus:
		return 9
	case token.Star, token.Slash, token.Percent:
		return 10
	default:
		return 0
	}
}

func binOp(k token.Kind) ast.BinaryOp {
	switch k {
	case token.PipePipe:
		return ast.LogOr
	case token.AmpAmp:
		return ast.LogAnd
	case token.Pipe:
		return ast.Or
	case token.Caret:
		return ast.Xor
	case token.Amp:
		return ast.And
	case token.EqEq:
		return ast.Eq
	case token.BangEq:
		return ast.Ne
	case token.Lt:
		return ast.Lt
	case token.NbAssign:
		return ast.Le
	case token.Gt:
		return ast.Gt
	case token.GtEq:
		return ast.Ge
	case token.Shl:
		return ast.Shl
	case token.Shr:
		return ast.Shr
	case token.Sshr:
		return ast.Sshr
	case token.Plus:
		return ast.Add
	case token.Minus:
		return ast.Sub
	case token.Star:
		return ast.Mul
	case token.Slash:
		return ast.Div
	default:
		return ast.Mod
	}
}

func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (ast.Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(token.Question) {
		return cond, nil
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &ast.Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.Binary{Op: binOp(opTok.Kind), X: lhs, Y: rhs, Pos: opTok.Pos}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.Neg, X: x, Pos: t.Pos}, nil
	case token.Plus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.Plus, X: x, Pos: t.Pos}, nil
	case token.Bang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.LogNot, X: x, Pos: t.Pos}, nil
	case token.Tilde:
		p.next()
		// ~& ~| ~^ reduction operators.
		switch p.cur().Kind {
		case token.Amp:
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &ast.Unary{Op: ast.RedNand, X: x, Pos: t.Pos}, nil
		case token.Pipe:
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &ast.Unary{Op: ast.RedNor, X: x, Pos: t.Pos}, nil
		case token.Caret:
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &ast.Unary{Op: ast.RedXnor, X: x, Pos: t.Pos}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: ast.BitNot, X: x, Pos: t.Pos}, nil
	case token.Amp, token.Pipe, token.Caret:
		// Reduction operator in prefix position.
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := ast.RedAnd
		if t.Kind == token.Pipe {
			op = ast.RedOr
		} else if t.Kind == token.Caret {
			op = ast.RedXor
		}
		return &ast.Unary{Op: op, X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Number:
		p.next()
		return parseNumber(t)

	case token.Ident:
		p.next()
		var e ast.Expr = &ast.Ident{Name: t.Text, Pos: t.Pos}
		return p.parseSelects(e)

	case token.SysIdent:
		p.next()
		sf := &ast.SysFunc{Name: t.Text, Pos: t.Pos}
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		for p.cur().Kind != token.RParen {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sf.Args = append(sf.Args, a)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return sf, nil

	case token.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return p.parseSelects(e)

	case token.LBrace:
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// {N{x}} replication?
		if p.cur().Kind == token.LBrace {
			p.next()
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBrace); err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBrace); err != nil {
				return nil, err
			}
			return &ast.Repl{Count: first, Value: val, Pos: t.Pos}, nil
		}
		cat := &ast.Concat{Parts: []ast.Expr{first}, Pos: t.Pos}
		for p.accept(token.Comma) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, e)
		}
		if _, err := p.expect(token.RBrace); err != nil {
			return nil, err
		}
		return cat, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}

// parseSelects parses trailing [i] and [msb:lsb] selects.
func (p *parser) parseSelects(e ast.Expr) (ast.Expr, error) {
	for p.cur().Kind == token.LBrack {
		pos := p.next().Pos
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(token.Colon) {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBrack); err != nil {
				return nil, err
			}
			e = &ast.PartSelect{X: e, MSB: first, LSB: lsb, Pos: pos}
			continue
		}
		if _, err := p.expect(token.RBrack); err != nil {
			return nil, err
		}
		e = &ast.Index{X: e, Index: first, Pos: pos}
	}
	return e, nil
}

// parseNumber decodes Verilog literals: 42, 8'hFF, 4'b10x0, 'd9, 1'sb1.
func parseNumber(t token.Token) (ast.Expr, error) {
	text := strings.ReplaceAll(t.Text, "_", "")
	n := &ast.Number{Pos: t.Pos}
	q := strings.IndexByte(text, '\'')
	if q < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "bad number " + t.Text}
		}
		n.Value = v
		n.Width = 0 // unsized
		return n, nil
	}
	width := 0
	if q > 0 {
		w, err := strconv.Atoi(text[:q])
		if err != nil || w <= 0 || w > 64 {
			return nil, &Error{Pos: t.Pos, Msg: "bad literal width in " + t.Text}
		}
		width = w
	}
	rest := text[q+1:]
	if len(rest) > 0 && (rest[0] == 's' || rest[0] == 'S') {
		n.Signed = true
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return nil, &Error{Pos: t.Pos, Msg: "bad literal " + t.Text}
	}
	base := 10
	switch rest[0] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	default:
		return nil, &Error{Pos: t.Pos, Msg: "bad literal base in " + t.Text}
	}
	digits := rest[1:]
	bitsPer := map[int]int{2: 1, 8: 3, 16: 4}[base]
	var val, xmask uint64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		isX := c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?'
		if base == 10 {
			if isX {
				return nil, &Error{Pos: t.Pos, Msg: "x/z not allowed in decimal literal " + t.Text}
			}
			if c < '0' || c > '9' {
				return nil, &Error{Pos: t.Pos, Msg: "bad digit in " + t.Text}
			}
			val = val*10 + uint64(c-'0')
			continue
		}
		var d uint64
		switch {
		case isX:
			d = 0
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return nil, &Error{Pos: t.Pos, Msg: "bad digit in " + t.Text}
		}
		if d >= uint64(base) {
			return nil, &Error{Pos: t.Pos, Msg: "digit out of range in " + t.Text}
		}
		val = val<<uint(bitsPer) | d
		xmask <<= uint(bitsPer)
		if isX {
			xmask |= (1 << uint(bitsPer)) - 1
		}
	}
	if width == 0 {
		width = 32
	}
	if width < 64 {
		val &= (1 << uint(width)) - 1
		xmask &= (1 << uint(width)) - 1
	}
	n.Value = val
	n.Width = width
	n.XMask = xmask
	return n, nil
}
