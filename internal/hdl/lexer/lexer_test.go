package lexer

import (
	"testing"
	"testing/quick"

	"livesim/internal/hdl/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeModuleHeader(t *testing.T) {
	src := "module adder #(parameter W = 8) (input [W-1:0] a, output [W-1:0] sum);"
	toks := Tokenize("t.v", src)
	want := []token.Kind{
		token.KwModule, token.Ident, token.Hash, token.LParen,
		token.KwParameter, token.Ident, token.Assign, token.Number,
		token.RParen, token.LParen,
		token.KwInput, token.LBrack, token.Ident, token.Minus, token.Number,
		token.Colon, token.Number, token.RBrack, token.Ident, token.Comma,
		token.KwOutput, token.LBrack, token.Ident, token.Minus, token.Number,
		token.Colon, token.Number, token.RBrack, token.Ident,
		token.RParen, token.Semi, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v (text %q)", i, got[i], want[i], toks[i].Text)
		}
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []string{"42", "8'hFF", "4'b1010", "12'o777", "'d42", "64'hdead_beef_cafe_f00d", "1'sb1", "8'hx"}
	for _, src := range cases {
		toks := Tokenize("", src)
		if len(toks) != 2 || toks[0].Kind != token.Number {
			t.Errorf("%q: got %v, want single Number", src, toks)
		}
		if toks[0].Text != src {
			t.Errorf("%q: text %q", src, toks[0].Text)
		}
	}
}

func TestOperators(t *testing.T) {
	src := "<= < << >= > >> >>> == = != ! && & || | ^ ~ ? :"
	want := []token.Kind{
		token.NbAssign, token.Lt, token.Shl, token.GtEq, token.Gt, token.Shr,
		token.Sshr, token.EqEq, token.Assign, token.BangEq, token.Bang,
		token.AmpAmp, token.Amp, token.PipePipe, token.Pipe, token.Caret,
		token.Tilde, token.Question, token.Colon, token.EOF,
	}
	got := kinds(Tokenize("", src))
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	src := "a // line\n/* block\nspanning */ b"
	toks := Tokenize("", src)
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("got %v", toks)
	}
}

func TestKeepTrivia(t *testing.T) {
	src := "a /* c */ b"
	toks := Tokenize("", src, KeepTrivia())
	want := []token.Kind{token.Ident, token.Whitespace, token.BlockComment,
		token.Whitespace, token.Ident, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if toks[2].Text != "/* c */" {
		t.Errorf("comment text %q", toks[2].Text)
	}
}

func TestPositions(t *testing.T) {
	src := "ab\n cd"
	toks := Tokenize("f.v", src)
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 2 {
		t.Errorf("second token pos %v", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "f.v:2:2" {
		t.Errorf("pos string %q", got)
	}
}

func TestSameBehavior(t *testing.T) {
	a := "assign x = a + b; // sum"
	b := "assign x=a+b;/* different comment */"
	c := "assign x = a - b;"
	if !SameBehavior(a, b) {
		t.Error("comment/space-only difference should be same behaviour")
	}
	if SameBehavior(a, c) {
		t.Error("operator change must be behavioural")
	}
	if SameBehavior("assign x = 1;", "assign x = 1; assign y = 1;") {
		t.Error("added statement must be behavioural")
	}
}

func TestDirectiveAndSysIdent(t *testing.T) {
	toks := Tokenize("", "`define FOO $display(\"hi\")")
	want := []token.Kind{token.Directive, token.Ident, token.SysIdent,
		token.LParen, token.String, token.RParen, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if toks[0].Text != "`define" || toks[2].Text != "$display" {
		t.Errorf("texts %q %q", toks[0].Text, toks[2].Text)
	}
}

func TestStringEscapes(t *testing.T) {
	toks := Tokenize("", `"a\"b" x`)
	if toks[0].Kind != token.String || toks[0].Text != `"a\"b"` {
		t.Fatalf("got %v", toks[0])
	}
	if toks[1].Text != "x" {
		t.Fatalf("got %v", toks[1])
	}
}

func TestErrorToken(t *testing.T) {
	toks := Tokenize("", "\x01")
	if toks[0].Kind != token.Error {
		t.Fatalf("got %v", toks[0])
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	toks := Tokenize("", "a /* never ends")
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Kind != token.EOF {
		t.Fatalf("got %v", toks)
	}
}

// Property: lexing is insensitive to surrounding whitespace, and the
// concatenation of KeepTrivia token texts reconstructs the input exactly.
func TestTriviaRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := genSource(seed)
		var rebuilt string
		for _, tok := range Tokenize("", src, KeepTrivia()) {
			rebuilt += tok.Text
		}
		if rebuilt != src {
			return false
		}
		return SameBehavior(src, "  "+src+"\t// tail\n")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// genSource builds a small pseudo-random LiveHDL fragment from a seed.
func genSource(seed uint32) string {
	frags := []string{
		"assign x = a + b;", "reg [7:0] r;", "wire w;", "if (a) y = 1; else y = 0;",
		"always @(posedge clk) q <= d;", "// comment\n", "/* block */",
		"mod #(.W(8)) u0 (.a(a), .b(b));", "case (s) 2'b00: o = a; default: o = b; endcase",
		" ", "\n", "\t",
	}
	s := ""
	x := seed
	for i := 0; i < 8; i++ {
		x = x*1664525 + 1013904223
		s += frags[x%uint32(len(frags))]
	}
	return s
}
