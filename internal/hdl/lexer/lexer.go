// Package lexer tokenizes LiveHDL source text.
//
// The lexer has two modes. The parser uses the default mode, which skips
// whitespace and comments. LiveParser uses KeepTrivia mode so it can tell
// a comment-only edit from a behavioural one (paper Section III-C: "confirm
// that actual behavior was changed, not just comments or spacing").
package lexer

import (
	"strings"

	"livesim/internal/hdl/token"
)

// Lexer scans LiveHDL source into tokens.
type Lexer struct {
	src        string
	file       string
	off        int
	line       int
	col        int
	keepTrivia bool
}

// Option configures a Lexer.
type Option func(*Lexer)

// KeepTrivia makes the lexer emit whitespace and comment tokens instead of
// skipping them.
func KeepTrivia() Option { return func(l *Lexer) { l.keepTrivia = true } }

// New returns a Lexer over src. file is used in positions for diagnostics.
func New(file, src string, opts ...Option) *Lexer {
	l := &Lexer{src: src, file: file, line: 1, col: 1}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Tokenize scans the entire input and returns all tokens, ending with EOF.
func Tokenize(file, src string, opts ...Option) []token.Token {
	l := New(file, src, opts...)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

// BehavioralTokens returns the token stream of src with trivia removed and
// positions zeroed, suitable for comparing two versions of a module body to
// decide whether an edit changed behaviour.
func BehavioralTokens(src string) []token.Token {
	var out []token.Token
	for _, t := range Tokenize("", src) {
		if t.Kind == token.EOF {
			break
		}
		out = append(out, token.Token{Kind: t.Kind, Text: t.Text})
	}
	return out
}

// SameBehavior reports whether two source fragments have identical token
// streams once comments and whitespace are ignored.
func SameBehavior(a, b string) bool {
	ta, tb := BehavioralTokens(a), BehavioralTokens(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Offset: l.off, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdent0(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isIdent0(c) || isDigit(c) }

// isNumCont reports whether c may continue a Verilog number literal body
// (after a base marker). Underscores are legal separators.
func isNumCont(c byte) bool {
	return isDigit(c) || c == '_' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?'
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	for {
		start := l.pos()
		if l.off >= len(l.src) {
			return token.Token{Kind: token.EOF, Pos: start}
		}
		c := l.peek()

		switch {
		case isSpace(c):
			for l.off < len(l.src) && isSpace(l.peek()) {
				l.advance()
			}
			if l.keepTrivia {
				return l.mk(token.Whitespace, start)
			}
			continue

		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			if l.keepTrivia {
				return l.mk(token.LineComment, start)
			}
			continue

		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
			if l.keepTrivia {
				return l.mk(token.BlockComment, start)
			}
			continue

		case isIdent0(c):
			for l.off < len(l.src) && isIdent(l.peek()) {
				l.advance()
			}
			text := l.src[start.Offset:l.off]
			if k, ok := token.Keywords[text]; ok {
				return token.Token{Kind: k, Text: text, Pos: start}
			}
			return token.Token{Kind: token.Ident, Text: text, Pos: start}

		case c == '$':
			l.advance()
			for l.off < len(l.src) && isIdent(l.peek()) {
				l.advance()
			}
			return l.mk(token.SysIdent, start)

		case c == '`':
			l.advance()
			for l.off < len(l.src) && isIdent(l.peek()) {
				l.advance()
			}
			return l.mk(token.Directive, start)

		case isDigit(c) || c == '\'':
			return l.number(start)

		case c == '"':
			l.advance()
			for l.off < len(l.src) && l.peek() != '"' {
				if l.peek() == '\\' && l.off+1 < len(l.src) {
					l.advance()
				}
				l.advance()
			}
			if l.off < len(l.src) {
				l.advance() // closing quote
			}
			return l.mk(token.String, start)

		default:
			return l.operator(start)
		}
	}
}

func (l *Lexer) mk(k token.Kind, start token.Pos) token.Token {
	return token.Token{Kind: k, Text: l.src[start.Offset:l.off], Pos: start}
}

// number scans decimal literals and Verilog sized/based literals such as
// 8'hFF, 'd42, 4'b1010, 12'o777.
func (l *Lexer) number(start token.Pos) token.Token {
	// Optional size prefix.
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	if l.peek() == '\'' {
		l.advance()
		if c := l.peek(); c == 's' || c == 'S' {
			l.advance() // signed marker
		}
		if c := l.peek(); strings.IndexByte("bBoOdDhH", c) >= 0 {
			l.advance()
		} else {
			return l.mk(token.Error, start)
		}
		for l.off < len(l.src) && isNumCont(l.peek()) {
			l.advance()
		}
	}
	return l.mk(token.Number, start)
}

func (l *Lexer) operator(start token.Pos) token.Token {
	c := l.advance()
	two := func(next byte, k2 token.Kind, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return l.mk(k2, start)
		}
		return l.mk(k1, start)
	}
	switch c {
	case '(':
		return l.mk(token.LParen, start)
	case ')':
		return l.mk(token.RParen, start)
	case '[':
		return l.mk(token.LBrack, start)
	case ']':
		return l.mk(token.RBrack, start)
	case '{':
		return l.mk(token.LBrace, start)
	case '}':
		return l.mk(token.RBrace, start)
	case ',':
		return l.mk(token.Comma, start)
	case ';':
		return l.mk(token.Semi, start)
	case ':':
		return l.mk(token.Colon, start)
	case '.':
		return l.mk(token.Dot, start)
	case '#':
		return l.mk(token.Hash, start)
	case '@':
		return l.mk(token.At, start)
	case '?':
		return l.mk(token.Question, start)
	case '=':
		return two('=', token.EqEq, token.Assign)
	case '+':
		return l.mk(token.Plus, start)
	case '-':
		return l.mk(token.Minus, start)
	case '*':
		return l.mk(token.Star, start)
	case '/':
		return l.mk(token.Slash, start)
	case '%':
		return l.mk(token.Percent, start)
	case '~':
		return l.mk(token.Tilde, start)
	case '^':
		return l.mk(token.Caret, start)
	case '!':
		return two('=', token.BangEq, token.Bang)
	case '&':
		return two('&', token.AmpAmp, token.Amp)
	case '|':
		return two('|', token.PipePipe, token.Pipe)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return l.mk(token.Shl, start)
		}
		return two('=', token.NbAssign, token.Lt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '>' {
				l.advance()
				return l.mk(token.Sshr, start)
			}
			return l.mk(token.Shr, start)
		}
		return two('=', token.GtEq, token.Gt)
	}
	return l.mk(token.Error, start)
}
