// Package printer renders LiveHDL ASTs back to source text. Printing is
// behaviour-preserving: re-parsing the output yields a tree whose
// behavioural token stream matches the original (the round-trip property
// tests in this package enforce it). LiveSim uses it for diagnostics and
// tooling; generators can build ASTs and emit legal source.
package printer

import (
	"fmt"
	"strings"

	"livesim/internal/hdl/ast"
)

// Module renders one module definition.
func Module(m *ast.Module) string {
	var sb strings.Builder
	sb.WriteString("module ")
	sb.WriteString(m.Name)
	if len(m.Params) > 0 {
		sb.WriteString(" #(")
		for i, p := range m.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("parameter ")
			sb.WriteString(p.Name)
			if p.Default != nil {
				sb.WriteString(" = ")
				sb.WriteString(Expr(p.Default))
			}
		}
		sb.WriteString(")")
	}
	sb.WriteString(" (")
	for i, p := range m.Ports {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Dir.String())
		if p.IsReg {
			sb.WriteString(" reg")
		}
		if p.Signed {
			sb.WriteString(" signed")
		}
		if p.Range != nil {
			fmt.Fprintf(&sb, " [%s:%s]", Expr(p.Range.MSB), Expr(p.Range.LSB))
		}
		sb.WriteByte(' ')
		sb.WriteString(p.Name)
	}
	sb.WriteString(");\n")
	for _, it := range m.Items {
		sb.WriteString(item(it, "  "))
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

// File renders a whole source file.
func File(f *ast.SourceFile) string {
	var sb strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(Module(m))
	}
	return sb.String()
}

func item(it ast.Item, ind string) string {
	switch x := it.(type) {
	case *ast.NetDecl:
		var sb strings.Builder
		sb.WriteString(ind)
		sb.WriteString(x.Kind.String())
		if x.Signed && x.Kind != ast.Integer {
			sb.WriteString(" signed")
		}
		if x.Range != nil && x.Kind != ast.Integer {
			fmt.Fprintf(&sb, " [%s:%s]", Expr(x.Range.MSB), Expr(x.Range.LSB))
		}
		sb.WriteByte(' ')
		sb.WriteString(x.Name)
		if x.Array != nil {
			fmt.Fprintf(&sb, " [%s:%s]", Expr(x.Array.MSB), Expr(x.Array.LSB))
		}
		if x.Init != nil {
			sb.WriteString(" = ")
			sb.WriteString(Expr(x.Init))
		}
		sb.WriteString(";\n")
		return sb.String()

	case *ast.LocalParam:
		return fmt.Sprintf("%slocalparam %s = %s;\n", ind, x.Name, Expr(x.Value))

	case *ast.ContAssign:
		return fmt.Sprintf("%sassign %s = %s;\n", ind, Expr(x.LHS), Expr(x.RHS))

	case *ast.AlwaysBlock:
		sens := "*"
		switch x.Edge {
		case ast.Posedge:
			sens = "posedge " + x.Clock
		case ast.Negedge:
			sens = "negedge " + x.Clock
		}
		return fmt.Sprintf("%salways @(%s)\n%s", ind, sens, Stmt(x.Body, ind+"  "))

	case *ast.Instance:
		var sb strings.Builder
		sb.WriteString(ind)
		sb.WriteString(x.ModName)
		if len(x.Params) > 0 {
			sb.WriteString(" #(")
			writeConns(&sb, x.Params)
			sb.WriteString(")")
		}
		sb.WriteByte(' ')
		sb.WriteString(x.Name)
		sb.WriteString(" (")
		writeConns(&sb, x.Conns)
		sb.WriteString(");\n")
		return sb.String()
	}
	return ind + "// <unknown item>\n"
}

func writeConns(sb *strings.Builder, conns []ast.NamedConn) {
	for i, c := range conns {
		if i > 0 {
			sb.WriteString(", ")
		}
		if c.Name != "" {
			sb.WriteByte('.')
			sb.WriteString(c.Name)
			sb.WriteByte('(')
			if c.Expr != nil {
				sb.WriteString(Expr(c.Expr))
			}
			sb.WriteByte(')')
		} else if c.Expr != nil {
			sb.WriteString(Expr(c.Expr))
		}
	}
}

// Stmt renders a procedural statement.
func Stmt(s ast.Stmt, ind string) string {
	switch x := s.(type) {
	case nil:
		return ind + ";\n"
	case *ast.Block:
		var sb strings.Builder
		sb.WriteString(ind)
		sb.WriteString("begin\n")
		for _, st := range x.Stmts {
			sb.WriteString(Stmt(st, ind+"  "))
		}
		sb.WriteString(ind)
		sb.WriteString("end\n")
		return sb.String()
	case *ast.If:
		var sb strings.Builder
		fmt.Fprintf(&sb, "%sif (%s)\n%s", ind, Expr(x.Cond), Stmt(x.Then, ind+"  "))
		if x.Else != nil {
			fmt.Fprintf(&sb, "%selse\n%s", ind, Stmt(x.Else, ind+"  "))
		}
		return sb.String()
	case *ast.Case:
		var sb strings.Builder
		kw := "case"
		if x.Casez {
			kw = "casez"
		}
		fmt.Fprintf(&sb, "%s%s (%s)\n", ind, kw, Expr(x.Subject))
		for _, it := range x.Items {
			if it.Exprs == nil {
				fmt.Fprintf(&sb, "%s  default:\n%s", ind, Stmt(it.Body, ind+"    "))
				continue
			}
			labels := make([]string, len(it.Exprs))
			for i, e := range it.Exprs {
				labels[i] = Expr(e)
			}
			fmt.Fprintf(&sb, "%s  %s:\n%s", ind, strings.Join(labels, ", "), Stmt(it.Body, ind+"    "))
		}
		fmt.Fprintf(&sb, "%sendcase\n", ind)
		return sb.String()
	case *ast.Assign:
		op := "="
		if x.NonBlocking {
			op = "<="
		}
		return fmt.Sprintf("%s%s %s %s;\n", ind, Expr(x.LHS), op, Expr(x.RHS))
	case *ast.SysCall:
		var sb strings.Builder
		sb.WriteString(ind)
		sb.WriteString(x.Name)
		if len(x.Args) > 0 {
			sb.WriteByte('(')
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(Expr(a))
			}
			sb.WriteByte(')')
		}
		sb.WriteString(";\n")
		return sb.String()
	}
	return ind + "// <unknown stmt>\n"
}

var unaryTok = map[ast.UnaryOp]string{
	ast.Neg: "-", ast.LogNot: "!", ast.BitNot: "~",
	ast.RedAnd: "&", ast.RedOr: "|", ast.RedXor: "^",
	ast.RedNand: "~&", ast.RedNor: "~|", ast.RedXnor: "~^",
	ast.Plus: "+",
}

var binaryTok = map[ast.BinaryOp]string{
	ast.Add: "+", ast.Sub: "-", ast.Mul: "*", ast.Div: "/", ast.Mod: "%",
	ast.And: "&", ast.Or: "|", ast.Xor: "^", ast.Xnor: "~^",
	ast.LogAnd: "&&", ast.LogOr: "||",
	ast.Eq: "==", ast.Ne: "!=", ast.Lt: "<", ast.Le: "<=",
	ast.Gt: ">", ast.Ge: ">=",
	ast.Shl: "<<", ast.Shr: ">>", ast.Sshr: ">>>",
}

// Expr renders an expression. Sub-expressions are parenthesized
// conservatively, which preserves semantics without tracking precedence.
func Expr(e ast.Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return x.Name
	case *ast.Number:
		return number(x)
	case *ast.Unary:
		return unaryTok[x.Op] + "(" + Expr(x.X) + ")"
	case *ast.Binary:
		return "(" + Expr(x.X) + " " + binaryTok[x.Op] + " " + Expr(x.Y) + ")"
	case *ast.Ternary:
		return "(" + Expr(x.Cond) + " ? " + Expr(x.Then) + " : " + Expr(x.Else) + ")"
	case *ast.Index:
		return Expr(x.X) + "[" + Expr(x.Index) + "]"
	case *ast.PartSelect:
		return Expr(x.X) + "[" + Expr(x.MSB) + ":" + Expr(x.LSB) + "]"
	case *ast.Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = Expr(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *ast.Repl:
		return "{" + Expr(x.Count) + "{" + Expr(x.Value) + "}}"
	case *ast.SysFunc:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = Expr(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return "/*?*/"
}

// number renders a literal. Sized literals print in binary when they
// carry x-bits (casez wildcards map to '?'), otherwise hex/decimal.
func number(n *ast.Number) string {
	if n.Width == 0 {
		return fmt.Sprintf("%d", n.Value)
	}
	sign := ""
	if n.Signed {
		sign = "s"
	}
	if n.XMask != 0 {
		digits := make([]byte, n.Width)
		for i := 0; i < n.Width; i++ {
			bit := uint(n.Width - 1 - i)
			switch {
			case n.XMask>>bit&1 == 1:
				digits[i] = '?'
			case n.Value>>bit&1 == 1:
				digits[i] = '1'
			default:
				digits[i] = '0'
			}
		}
		return fmt.Sprintf("%d'%sb%s", n.Width, sign, digits)
	}
	return fmt.Sprintf("%d'%sh%x", n.Width, sign, n.Value)
}
