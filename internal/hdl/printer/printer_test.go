package printer

import (
	"strings"
	"testing"

	"livesim/internal/codegen"
	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/elab"
	"livesim/internal/hdl/parser"
	"livesim/internal/pgas"
)

// roundTrip parses src, prints it, reparses, and asserts the two compiled
// objects are identical — the strongest behavioural-equivalence check the
// repo has.
func roundTrip(t *testing.T, src, top string) {
	t.Helper()
	printed := reprint(t, src)
	o1 := compile(t, src, top)
	o2 := compile(t, printed, top)
	if o1.Hash() != o2.Hash() {
		t.Errorf("round trip changed behaviour for %s.\noriginal:\n%s\nprinted:\n%s", top, src, printed)
	}
}

func reprint(t *testing.T, src string) string {
	t.Helper()
	sf, err := parser.ParseFile("t.v", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := File(sf)
	if _, err := parser.ParseFile("printed.v", printed); err != nil {
		t.Fatalf("printed output does not reparse: %v\n%s", err, printed)
	}
	return printed
}

func compile(t *testing.T, src, top string) interface{ Hash() string } {
	t.Helper()
	sf, err := parser.ParseFile("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]*ast.Module{}
	for _, m := range sf.Modules {
		srcs[m.Name] = m
	}
	d, err := elab.Elaborate(srcs, top, nil)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := codegen.Compile(d.Top(), codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestRoundTripSmallModules(t *testing.T) {
	cases := []struct{ src, top string }{
		{`module a (input [7:0] x, output [7:0] y); assign y = x + 8'h01; endmodule`, "a"},
		{`module b (input clk, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d;
endmodule`, "b"},
		{`module c (input [1:0] s, input [7:0] a, b, output reg [7:0] y);
  always @(*) begin
    casez (s)
      2'b1?: y = a;
      2'b01: y = b;
      default: y = a ^ b;
    endcase
  end
endmodule`, "c"},
		{`module d #(parameter W = 8) (input [W-1:0] x, output [W-1:0] y);
  localparam HALF = W / 2;
  wire [W-1:0] t = {x[HALF-1:0], x[W-1:HALF]};
  assign y = t;
endmodule`, "d"},
		{`module e (input clk, input we, input [3:0] a, input [7:0] d, output [7:0] q);
  reg [7:0] mem [0:15];
  assign q = mem[a];
  always @(posedge clk) if (we) mem[a] <= d;
endmodule`, "e"},
		{`module f (input [7:0] v, output p, output [7:0] r);
  assign p = ^(v) ^ (&v) ^ (|v);
  assign r = {2{v[3:0]}};
endmodule`, "f"},
		{`module g (input signed [7:0] a, b, output lt, output [7:0] sra);
  assign lt = $signed(a) < $signed(b);
  assign sra = a >>> 2;
endmodule`, "g"},
	}
	for i, c := range cases {
		c := c
		t.Run(string(rune('a'+i)), func(t *testing.T) { roundTrip(t, c.src, c.top) })
	}
}

func TestRoundTripPGASStages(t *testing.T) {
	// The real benchmark RTL: every stage module must survive the trip.
	files := pgas.DesignSource(1)
	for name, src := range files {
		if name == "mesh.v" {
			continue // tops are covered by the full-design test below
		}
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			printed := reprint(t, src)
			sf1, _ := parser.ParseFile("a.v", src)
			sf2, err := parser.ParseFile("b.v", printed)
			if err != nil {
				t.Fatal(err)
			}
			if len(sf1.Modules) != len(sf2.Modules) {
				t.Fatalf("module count changed")
			}
		})
	}
}

func TestRoundTripFullPGASDesign(t *testing.T) {
	// Print every file of the 4-node design, reparse, recompile the whole
	// hierarchy, and compare the top object hash.
	files := pgas.DesignSource(4)
	var orig, printed strings.Builder
	for _, name := range []string{"stage_if.v", "stage_id.v", "stage_ex.v", "stage_mem.v", "stage_wb.v", "rv_core.v", "node_mem.v", "pgas_node.v", "mesh.v"} {
		src := files[name]
		orig.WriteString(src)
		printed.WriteString(reprint(t, src))
	}
	o1 := compile(t, orig.String(), pgas.TopName(4))
	o2 := compile(t, printed.String(), pgas.TopName(4))
	if o1.Hash() != o2.Hash() {
		t.Error("full PGAS design changed behaviour across print round trip")
	}
}

func TestNumberRendering(t *testing.T) {
	cases := map[string]*ast.Number{
		"42":      {Value: 42},
		"8'h2a":   {Value: 42, Width: 8},
		"4'b1?0?": {Value: 0b1000, Width: 4, XMask: 0b0101},
		"8'sh7f":  {Value: 0x7F, Width: 8, Signed: true},
	}
	for want, n := range cases {
		if got := number(n); got != want {
			t.Errorf("number %+v = %q want %q", n, got, want)
		}
	}
}

func TestExprCoverage(t *testing.T) {
	exprs := []string{
		"a + b * c", "a ? b : c", "{a, b, 2'b01}", "{3{x}}",
		"x[3]", "x[7:4]", "$signed(v) >>> 1", "!(a && b) || ~c",
		"~&v", "~|v", "~^v",
	}
	for _, src := range exprs {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		out := Expr(e)
		e2, err := parser.ParseExpr(out)
		if err != nil {
			t.Errorf("%s printed as unparseable %q: %v", src, out, err)
			continue
		}
		if Expr(e2) != out {
			t.Errorf("%s: print not a fixed point: %q vs %q", src, out, Expr(e2))
		}
	}
}
