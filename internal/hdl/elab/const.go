package elab

import (
	"fmt"

	"livesim/internal/hdl/ast"
)

// EvalConst evaluates a compile-time constant expression over the given
// name table (parameters and localparams). Any reference to a signal is an
// error — Verilog requires parameters to be decidable at elaboration time.
func EvalConst(e ast.Expr, consts map[string]uint64) (uint64, error) {
	switch x := e.(type) {
	case *ast.Number:
		return x.Value, nil
	case *ast.Ident:
		v, ok := consts[x.Name]
		if !ok {
			return 0, fmt.Errorf("%q is not a constant", x.Name)
		}
		return v, nil
	case *ast.Unary:
		v, err := EvalConst(x.X, consts)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ast.Neg:
			return -v, nil
		case ast.Plus:
			return v, nil
		case ast.BitNot:
			return ^v, nil
		case ast.LogNot:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		default:
			return 0, fmt.Errorf("operator not allowed in constant expression")
		}
	case *ast.Binary:
		a, err := EvalConst(x.X, consts)
		if err != nil {
			return 0, err
		}
		b, err := EvalConst(x.Y, consts)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ast.Add:
			return a + b, nil
		case ast.Sub:
			return a - b, nil
		case ast.Mul:
			return a * b, nil
		case ast.Div:
			if b == 0 {
				return 0, fmt.Errorf("division by zero in constant expression")
			}
			return a / b, nil
		case ast.Mod:
			if b == 0 {
				return 0, fmt.Errorf("modulo by zero in constant expression")
			}
			return a % b, nil
		case ast.And:
			return a & b, nil
		case ast.Or:
			return a | b, nil
		case ast.Xor:
			return a ^ b, nil
		case ast.Shl:
			if b >= 64 {
				return 0, nil
			}
			return a << b, nil
		case ast.Shr, ast.Sshr:
			if b >= 64 {
				return 0, nil
			}
			return a >> b, nil
		case ast.Eq:
			return b2u(a == b), nil
		case ast.Ne:
			return b2u(a != b), nil
		case ast.Lt:
			return b2u(a < b), nil
		case ast.Le:
			return b2u(a <= b), nil
		case ast.Gt:
			return b2u(a > b), nil
		case ast.Ge:
			return b2u(a >= b), nil
		case ast.LogAnd:
			return b2u(a != 0 && b != 0), nil
		case ast.LogOr:
			return b2u(a != 0 || b != 0), nil
		default:
			return 0, fmt.Errorf("operator not allowed in constant expression")
		}
	case *ast.Ternary:
		c, err := EvalConst(x.Cond, consts)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return EvalConst(x.Then, consts)
		}
		return EvalConst(x.Else, consts)
	default:
		return 0, fmt.Errorf("expression form %T not allowed in constant expression", e)
	}
}

// TryConst evaluates e if it is constant; ok is false otherwise.
func TryConst(e ast.Expr, consts map[string]uint64) (v uint64, ok bool) {
	v, err := EvalConst(e, consts)
	return v, err == nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
