// Package elab elaborates parsed LiveHDL modules: it binds parameters,
// folds constant expressions, resolves signal widths, and specializes the
// design hierarchy.
//
// Elaboration is where the paper's "each module is only compiled once"
// property is established (Section III-B): the unit of compilation is a
// *specialization* — a (module, parameter binding) pair identified by Key —
// and a 16x16 PGAS mesh with 256 identical cores yields exactly one
// specialization per stage module, no matter how many instances exist.
// In Verilog, parameters are decided per instance (Section III-C), so the
// elaborator must visit every instantiation to discover which
// specializations exist.
package elab

import (
	"fmt"
	"sort"
	"strings"

	"livesim/internal/hdl/ast"
)

// MaxWidth is the widest supported vector. Every signal fits a uint64.
const MaxWidth = 64

// SignalKind classifies elaborated signals.
type SignalKind uint8

// Signal kinds.
const (
	Wire SignalKind = iota
	Reg
	Memory
)

// Signal is one elaborated net, register or memory.
type Signal struct {
	Name   string
	Kind   SignalKind
	Width  int // element width in bits
	Depth  int // >0 for memories
	Signed bool

	IsPort  bool
	PortDir ast.Dir
	PortIdx int // position in the module port list
}

// Conn is a resolved instance port connection.
type Conn struct {
	Port *Signal // the child's port signal
	Expr ast.Expr
}

// InstanceRef is a resolved child instantiation.
type InstanceRef struct {
	Name     string
	ChildKey string // elaborated specialization key
	Child    *Module
	Conns    []Conn
}

// Module is an elaborated specialization of a source module.
type Module struct {
	Name   string            // source module name
	Key    string            // specialization key, e.g. "fifo#D=16,W=8"
	Params map[string]uint64 // bound parameter values

	Signals   []*Signal
	SigByName map[string]*Signal
	Ports     []*Signal // in declaration order

	// Consts contains parameters and localparams for constant evaluation.
	Consts map[string]uint64

	// Assigns are continuous assignments (including wire-init sugar).
	Assigns []*ast.ContAssign
	// Always are the processes.
	Always []*ast.AlwaysBlock
	// Instances are resolved child instantiations.
	Instances []*InstanceRef

	// Clock is the sensitivity signal shared by all posedge blocks
	// ("" when the module is purely combinational).
	Clock string

	src *ast.Module
}

// Design is a fully elaborated hierarchy.
type Design struct {
	TopKey  string
	Modules map[string]*Module // by specialization key
	// Order lists specialization keys children-first (topological), so
	// compiling in Order always finds child objects ready.
	Order []string
}

// Top returns the elaborated top module.
func (d *Design) Top() *Module { return d.Modules[d.TopKey] }

// Key builds a specialization key from a module name and parameter binding.
func Key(name string, params map[string]uint64) string {
	if len(params) == 0 {
		return name
	}
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('#')
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%d", k, params[k])
	}
	return sb.String()
}

// Elaborate specializes the hierarchy rooted at top. srcs maps module names
// to their ASTs; overrides optionally rebinds top-level parameters.
func Elaborate(srcs map[string]*ast.Module, top string, overrides map[string]uint64) (*Design, error) {
	e := &elaborator{
		srcs: srcs,
		d:    &Design{Modules: make(map[string]*Module)},
	}
	key, err := e.instantiate(top, overrides, nil)
	if err != nil {
		return nil, err
	}
	e.d.TopKey = key
	return e.d, nil
}

type elaborator struct {
	srcs map[string]*ast.Module
	d    *Design
}

// instantiate elaborates one specialization (memoized by key).
func (e *elaborator) instantiate(name string, params map[string]uint64, stack []string) (string, error) {
	src, ok := e.srcs[name]
	if !ok {
		return "", fmt.Errorf("module %q not found (instantiated from %s)", name, stackStr(stack))
	}

	// Bind parameters: defaults, then overrides.
	bound := make(map[string]uint64)
	consts := make(map[string]uint64)
	for _, p := range src.Params {
		v := uint64(0)
		if p.Default != nil {
			var err error
			v, err = EvalConst(p.Default, consts)
			if err != nil {
				return "", fmt.Errorf("module %s: parameter %s default: %w", name, p.Name, err)
			}
		}
		if ov, ok := params[p.Name]; ok {
			v = ov
		}
		bound[p.Name] = v
		consts[p.Name] = v
	}
	for pn := range params {
		if _, ok := consts[pn]; !ok {
			return "", fmt.Errorf("module %s: unknown parameter %q overridden", name, pn)
		}
	}

	key := Key(name, bound)
	if _, done := e.d.Modules[key]; done {
		return key, nil
	}
	for _, s := range stack {
		if s == key {
			return "", fmt.Errorf("recursive instantiation of %s (%s)", key, stackStr(append(stack, key)))
		}
	}

	m := &Module{
		Name:      name,
		Key:       key,
		Params:    bound,
		SigByName: make(map[string]*Signal),
		Consts:    consts,
		src:       src,
	}

	// First pass: localparams (they may be used in declarations below).
	for _, it := range src.Items {
		lp, ok := it.(*ast.LocalParam)
		if !ok {
			continue
		}
		v, err := EvalConst(lp.Value, consts)
		if err != nil {
			return "", fmt.Errorf("module %s: localparam %s: %w", name, lp.Name, err)
		}
		consts[lp.Name] = v
	}

	// Ports.
	for i, p := range src.Ports {
		w, err := rangeWidth(p.Range, consts)
		if err != nil {
			return "", fmt.Errorf("module %s: port %s: %w", name, p.Name, err)
		}
		kind := Wire
		if p.IsReg {
			kind = Reg
		}
		sig := &Signal{
			Name: p.Name, Kind: kind, Width: w, Signed: p.Signed,
			IsPort: true, PortDir: p.Dir, PortIdx: i,
		}
		if p.Dir == ast.Inout {
			return "", fmt.Errorf("module %s: inout port %s not supported", name, p.Name)
		}
		if err := m.addSignal(sig); err != nil {
			return "", fmt.Errorf("module %s: %w", name, err)
		}
		m.Ports = append(m.Ports, sig)
	}

	// Declarations and items.
	for _, it := range src.Items {
		switch d := it.(type) {
		case *ast.LocalParam:
			// handled above
		case *ast.NetDecl:
			if err := e.addDecl(m, d); err != nil {
				return "", fmt.Errorf("module %s: %w", name, err)
			}
		case *ast.ContAssign:
			m.Assigns = append(m.Assigns, d)
		case *ast.AlwaysBlock:
			switch d.Edge {
			case ast.Posedge:
				if m.Clock != "" && m.Clock != d.Clock {
					return "", fmt.Errorf("module %s: multiple clocks (%s and %s) not supported", name, m.Clock, d.Clock)
				}
				m.Clock = d.Clock
			case ast.Negedge:
				return "", fmt.Errorf("module %s: negedge processes not supported", name)
			}
			m.Always = append(m.Always, d)
		case *ast.Instance:
			if err := e.addInstance(m, d, stack, key); err != nil {
				return "", fmt.Errorf("module %s: %w", name, err)
			}
		}
	}

	e.d.Modules[key] = m
	e.d.Order = append(e.d.Order, key) // children were appended first
	return key, nil
}

func (e *elaborator) addDecl(m *Module, d *ast.NetDecl) error {
	w, err := rangeWidth(d.Range, m.Consts)
	if err != nil {
		return fmt.Errorf("signal %s: %w", d.Name, err)
	}
	sig := &Signal{Name: d.Name, Signed: d.Signed, Width: w}
	switch {
	case d.Array != nil:
		if d.Kind != ast.Reg {
			return fmt.Errorf("memory %s must be declared reg", d.Name)
		}
		lo, err := EvalConst(d.Array.MSB, m.Consts)
		if err != nil {
			return fmt.Errorf("memory %s bounds: %w", d.Name, err)
		}
		hi, err := EvalConst(d.Array.LSB, m.Consts)
		if err != nil {
			return fmt.Errorf("memory %s bounds: %w", d.Name, err)
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo != 0 {
			return fmt.Errorf("memory %s must start at index 0", d.Name)
		}
		if hi >= 1<<28 {
			return fmt.Errorf("memory %s too deep (%d)", d.Name, hi+1)
		}
		sig.Kind = Memory
		sig.Depth = int(hi) + 1
	case d.Kind == ast.Reg:
		sig.Kind = Reg
	case d.Kind == ast.Integer:
		sig.Kind = Reg
		sig.Width = 32
		sig.Signed = true
	default:
		sig.Kind = Wire
	}

	// Port signals may be re-declared in the body (non-ANSI style); merge.
	if exist, ok := m.SigByName[d.Name]; ok {
		if !exist.IsPort {
			return fmt.Errorf("signal %s declared twice", d.Name)
		}
		if exist.Width != sig.Width && sig.Width != 1 {
			return fmt.Errorf("port %s redeclared with different width", d.Name)
		}
		if sig.Kind == Reg {
			exist.Kind = Reg
		}
	} else if err := m.addSignal(sig); err != nil {
		return err
	}

	if d.Init != nil {
		m.Assigns = append(m.Assigns, &ast.ContAssign{
			LHS: &ast.Ident{Name: d.Name, Pos: d.Pos},
			RHS: d.Init,
			Pos: d.Pos,
		})
	}
	return nil
}

func (e *elaborator) addInstance(m *Module, inst *ast.Instance, stack []string, selfKey string) error {
	childSrc, ok := e.srcs[inst.ModName]
	if !ok {
		return fmt.Errorf("instance %s: module %q not found", inst.Name, inst.ModName)
	}

	// Resolve parameter overrides in the parent's constant context.
	overrides := make(map[string]uint64)
	for i, pc := range inst.Params {
		pname := pc.Name
		if pname == "" {
			if i >= len(childSrc.Params) {
				return fmt.Errorf("instance %s: too many positional parameters", inst.Name)
			}
			pname = childSrc.Params[i].Name
		}
		v, err := EvalConst(pc.Expr, m.Consts)
		if err != nil {
			return fmt.Errorf("instance %s: parameter %s: %w", inst.Name, pname, err)
		}
		overrides[pname] = v
	}

	childKey, err := e.instantiate(inst.ModName, overrides, append(stack, selfKey))
	if err != nil {
		return err
	}
	child := e.d.Modules[childKey]

	ref := &InstanceRef{Name: inst.Name, ChildKey: childKey, Child: child}
	seen := make(map[string]bool)
	for i, c := range inst.Conns {
		var port *Signal
		if c.Name == "" {
			if i >= len(child.Ports) {
				return fmt.Errorf("instance %s: too many positional connections", inst.Name)
			}
			port = child.Ports[i]
		} else {
			port = child.SigByName[c.Name]
			if port == nil || !port.IsPort {
				return fmt.Errorf("instance %s: no port %q on module %s", inst.Name, c.Name, inst.ModName)
			}
		}
		if seen[port.Name] {
			return fmt.Errorf("instance %s: port %q connected twice", inst.Name, port.Name)
		}
		seen[port.Name] = true
		if c.Expr == nil {
			continue // explicitly unconnected
		}
		if port.PortDir == ast.Output {
			if _, ok := c.Expr.(*ast.Ident); !ok {
				return fmt.Errorf("instance %s: output port %q must connect to a plain signal", inst.Name, port.Name)
			}
		}
		ref.Conns = append(ref.Conns, Conn{Port: port, Expr: c.Expr})
	}
	m.Instances = append(m.Instances, ref)
	return nil
}

func (m *Module) addSignal(s *Signal) error {
	if _, dup := m.SigByName[s.Name]; dup {
		return fmt.Errorf("signal %s declared twice", s.Name)
	}
	if _, isConst := m.Consts[s.Name]; isConst {
		return fmt.Errorf("name %s is both a parameter and a signal", s.Name)
	}
	if s.Width <= 0 || s.Width > MaxWidth {
		return fmt.Errorf("signal %s: width %d out of range 1..%d", s.Name, s.Width, MaxWidth)
	}
	m.Signals = append(m.Signals, s)
	m.SigByName[s.Name] = s
	return nil
}

// rangeWidth computes the bit width of a declared range; nil means 1 bit.
func rangeWidth(r *ast.Range, consts map[string]uint64) (int, error) {
	if r == nil {
		return 1, nil
	}
	msb, err := EvalConst(r.MSB, consts)
	if err != nil {
		return 0, err
	}
	lsb, err := EvalConst(r.LSB, consts)
	if err != nil {
		return 0, err
	}
	if lsb != 0 {
		return 0, fmt.Errorf("ranges must be [msb:0], got [%d:%d]", msb, lsb)
	}
	w := int(msb) + 1
	if w <= 0 || w > MaxWidth {
		return 0, fmt.Errorf("width %d out of range 1..%d", w, MaxWidth)
	}
	return w, nil
}

func stackStr(stack []string) string {
	if len(stack) == 0 {
		return "<top>"
	}
	return strings.Join(stack, " -> ")
}
