package elab

import (
	"strings"
	"testing"

	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/parser"
)

func parseAll(t *testing.T, srcs ...string) map[string]*ast.Module {
	t.Helper()
	mods := make(map[string]*ast.Module)
	for _, src := range srcs {
		sf, err := parser.ParseFile("t.v", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sf.Modules {
			mods[m.Name] = m
		}
	}
	return mods
}

const adder = `
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a, b,
  output reg [W-1:0] sum
);
  always @(posedge clk) sum <= a + b;
endmodule
`

func TestElaborateSimple(t *testing.T) {
	d, err := Elaborate(parseAll(t, adder), "adder", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Top()
	if m.Key != "adder#W=8" {
		t.Errorf("key %q", m.Key)
	}
	if got := m.SigByName["a"].Width; got != 8 {
		t.Errorf("a width %d", got)
	}
	if m.Clock != "clk" {
		t.Errorf("clock %q", m.Clock)
	}
	if len(m.Ports) != 4 {
		t.Errorf("ports %d", len(m.Ports))
	}
	if m.SigByName["sum"].Kind != Reg {
		t.Errorf("sum kind %v", m.SigByName["sum"].Kind)
	}
}

func TestParameterOverride(t *testing.T) {
	d, err := Elaborate(parseAll(t, adder), "adder", map[string]uint64{"W": 16})
	if err != nil {
		t.Fatal(err)
	}
	m := d.Top()
	if m.Key != "adder#W=16" || m.SigByName["sum"].Width != 16 {
		t.Errorf("key %q width %d", m.Key, m.SigByName["sum"].Width)
	}
}

const hier = `
module leaf #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = x + 1;
endmodule
module mid #(parameter W = 4) (input [W-1:0] i, output [W-1:0] o);
  wire [W-1:0] t;
  leaf #(.W(W)) l0 (.x(i), .y(t));
  leaf #(.W(W)) l1 (.x(t), .y(o));
endmodule
module top (input [7:0] a, output [7:0] b);
  mid #(.W(8)) m0 (.i(a), .o(b));
endmodule
`

func TestHierarchySharing(t *testing.T) {
	d, err := Elaborate(parseAll(t, hier), "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The two leaf instances in mid share one specialization.
	if len(d.Modules) != 3 {
		t.Fatalf("want 3 specializations, got %d: %v", len(d.Modules), d.Order)
	}
	if _, ok := d.Modules["leaf#W=8"]; !ok {
		t.Errorf("missing leaf#W=8: %v", d.Order)
	}
	// Order must be children-first.
	pos := map[string]int{}
	for i, k := range d.Order {
		pos[k] = i
	}
	if pos["leaf#W=8"] > pos["mid#W=8"] || pos["mid#W=8"] > pos["top"] {
		t.Errorf("order %v", d.Order)
	}
	mid := d.Modules["mid#W=8"]
	if len(mid.Instances) != 2 || mid.Instances[0].ChildKey != "leaf#W=8" {
		t.Errorf("instances %+v", mid.Instances)
	}
}

func TestTwoSpecializations(t *testing.T) {
	src := `
module leaf #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = x;
endmodule
module top ();
  wire [3:0] a4, b4;
  wire [7:0] a8, b8;
  leaf #(.W(4)) l4 (.x(a4), .y(b4));
  leaf #(.W(8)) l8 (.x(a8), .y(b8));
endmodule
`
	d, err := Elaborate(parseAll(t, src), "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Modules["leaf#W=4"]; !ok {
		t.Error("missing leaf#W=4")
	}
	if _, ok := d.Modules["leaf#W=8"]; !ok {
		t.Error("missing leaf#W=8")
	}
}

func TestLocalparamAndMemory(t *testing.T) {
	src := `
module ram (input clk);
  localparam DEPTH = 1 << 4;
  reg [31:0] mem [0:DEPTH-1];
  integer i;
endmodule
`
	d, err := Elaborate(parseAll(t, src), "ram", nil)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Top()
	mem := m.SigByName["mem"]
	if mem.Kind != Memory || mem.Depth != 16 || mem.Width != 32 {
		t.Errorf("mem %+v", mem)
	}
	i := m.SigByName["i"]
	if i.Kind != Reg || i.Width != 32 || !i.Signed {
		t.Errorf("integer %+v", i)
	}
	if m.Consts["DEPTH"] != 16 {
		t.Errorf("DEPTH %d", m.Consts["DEPTH"])
	}
}

func TestWireInitBecomesAssign(t *testing.T) {
	src := "module m (input a, output w); wire t = a & 1'b1; assign w = t; endmodule"
	d, err := Elaborate(parseAll(t, src), "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Top().Assigns) != 2 {
		t.Errorf("assigns %d", len(d.Top().Assigns))
	}
}

func TestElabErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing module", "module a (); b u0 (); endmodule", "not found"},
		{"recursive", "module a (); a u0 (); endmodule", "recursive"},
		{"dup signal", "module a (); wire x; wire x; endmodule", "twice"},
		{"bad range", "module a (input [7:4] x); endmodule", "msb:0"},
		{"too wide", "module a (input [64:0] x); endmodule", "width"},
		{"two clocks", "module a (input c1, c2); reg r, s; always @(posedge c1) r <= 1; always @(posedge c2) s <= 1; endmodule", "clocks"},
		{"negedge", "module a (input c); reg r; always @(negedge c) r <= 1; endmodule", "negedge"},
		{"inout", "module a (inout x); endmodule", "inout"},
		{"bad port conn", "module b (input x); endmodule module a (); wire w; b u0 (.nope(w)); endmodule", "no port"},
		{"dup port conn", "module b (input x); endmodule module a (); wire w; b u0 (.x(w), .x(w)); endmodule", "twice"},
		{"output to expr", "module b (output x); endmodule module a (); wire w; b u0 (.x(w+1)); endmodule", "plain signal"},
		{"wire memory", "module a (); wire [3:0] m [0:3]; endmodule", "reg"},
		{"unknown param", "module b (); endmodule module a (); b #(.Z(1)) u0 (); endmodule", "parameter"},
		{"memory lo bound", "module a (); reg [3:0] m [2:5]; endmodule", "index 0"},
		{"const signal ref", "module a (input x); wire [x:0] y; endmodule", "not a constant"},
	}
	for _, c := range cases {
		_, err := Elaborate(parseAll(t, c.src), "a", nil)
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestEvalConst(t *testing.T) {
	consts := map[string]uint64{"W": 8, "D": 3}
	cases := []struct {
		src  string
		want uint64
	}{
		{"W", 8},
		{"W-1", 7},
		{"1 << W", 256},
		{"W*D+1", 25},
		{"W == 8 ? 100 : 200", 100},
		{"W != 8 ? 100 : 200", 200},
		{"-1", ^uint64(0)},
		{"~0", ^uint64(0)},
		{"!D", 0},
		{"W/D", 2},
		{"W%D", 2},
		{"W >= D && D > 0", 1},
		{"(W | D) ^ D", 8},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, err := EvalConst(e, consts)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %d want %d", c.src, got, c.want)
		}
	}
}

func TestEvalConstErrors(t *testing.T) {
	for _, src := range []string{"x", "1/0", "1%0", "{1,2}", "&3"} {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		if _, err := EvalConst(e, nil); err == nil {
			t.Errorf("%s: want error", src)
		}
	}
}

func TestPositionalConnections(t *testing.T) {
	src := `
module b (input x, output y);
  assign y = x;
endmodule
module a (input i, output o);
  b u0 (i, o);
endmodule
`
	d, err := Elaborate(parseAll(t, src), "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	conns := d.Top().Instances[0].Conns
	if len(conns) != 2 || conns[0].Port.Name != "x" || conns[1].Port.Name != "y" {
		t.Errorf("conns %+v", conns)
	}
}

func TestKeyDeterministic(t *testing.T) {
	p := map[string]uint64{"B": 2, "A": 1, "C": 3}
	if got := Key("m", p); got != "m#A=1,B=2,C=3" {
		t.Errorf("key %q", got)
	}
	if got := Key("m", nil); got != "m" {
		t.Errorf("key %q", got)
	}
}
