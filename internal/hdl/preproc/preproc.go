// Package preproc implements the LiveHDL preprocessor: `define, `undef,
// `ifdef, `ifndef, `else, `endif, `include, and macro expansion.
//
// Beyond producing expanded text for the parser, the preprocessor records
// which macros each source line depends on. LiveParser uses this map to
// implement the paper's rule (Section III-C) that a change to a directive
// dirties "any code below the affected lines", while a change inside one
// module dirties only that module.
package preproc

import (
	"fmt"
	"sort"
	"strings"
)

// Macro is a `define'd object-like macro (no arguments; argument macros are
// out of scope for LiveHDL, as they are for the paper's RTL).
type Macro struct {
	Name string
	Body string
	Line int // line of definition, 1-based
}

// Result is the output of preprocessing one source unit.
type Result struct {
	// Text is the fully expanded source. Line structure is preserved:
	// directive lines become empty lines so downstream positions map back
	// to the original file.
	Text string
	// Macros holds the final macro table.
	Macros map[string]Macro
	// LineDeps maps each 1-based output line to the set of macro names the
	// line's expansion or inclusion depended on (via `ifdef guards or
	// macro substitution).
	LineDeps map[int][]string
	// DefineLines maps macro names to the lines on which they were
	// (re)defined or undefined.
	DefineLines map[string][]int
}

// Includer resolves `include paths to file contents.
type Includer func(path string) (string, error)

// Options configures preprocessing.
type Options struct {
	// Defines seeds the macro table (like -D on a command line).
	Defines map[string]string
	// Include resolves `include directives. When nil, `include is an error.
	Include Includer
}

const maxExpandDepth = 64

// Process preprocesses src. file is used for diagnostics only.
func Process(file, src string, opts Options) (*Result, error) {
	p := &processor{
		res: &Result{
			Macros:      make(map[string]Macro),
			LineDeps:    make(map[int][]string),
			DefineLines: make(map[string][]int),
		},
		include: opts.Include,
		file:    file,
	}
	for k, v := range opts.Defines {
		p.res.Macros[k] = Macro{Name: k, Body: v}
	}
	var out strings.Builder
	if err := p.run(src, &out, nil); err != nil {
		return nil, err
	}
	p.res.Text = out.String()
	return p.res, nil
}

type processor struct {
	res     *Result
	include Includer
	file    string
	outLine int // lines emitted so far
}

// condState tracks one `ifdef level.
type condState struct {
	guard    string // macro name guarding this level
	active   bool   // are we currently emitting?
	taken    bool   // has any branch at this level been taken?
	elseSeen bool
}

func (p *processor) run(src string, out *strings.Builder, conds []condState) error {
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		srcLine := i + 1
		trimmed := strings.TrimSpace(line)
		active := true
		var guards []string
		for _, c := range conds {
			if !c.active {
				active = false
			}
			guards = append(guards, c.guard)
		}

		if strings.HasPrefix(trimmed, "`") {
			word, rest := splitDirective(trimmed)
			switch word {
			case "`define":
				if active {
					name, body := splitMacroDef(rest)
					if name == "" {
						return fmt.Errorf("%s:%d: malformed `define", p.file, srcLine)
					}
					p.res.Macros[name] = Macro{Name: name, Body: body, Line: srcLine}
					p.res.DefineLines[name] = append(p.res.DefineLines[name], srcLine)
				}
				p.emit(out, "", nil)
				continue
			case "`undef":
				name := strings.TrimSpace(rest)
				if active {
					delete(p.res.Macros, name)
					p.res.DefineLines[name] = append(p.res.DefineLines[name], srcLine)
				}
				p.emit(out, "", nil)
				continue
			case "`ifdef", "`ifndef":
				name := strings.TrimSpace(rest)
				_, defined := p.res.Macros[name]
				take := defined
				if word == "`ifndef" {
					take = !defined
				}
				conds = append(conds, condState{guard: name, active: active && take, taken: take})
				p.emit(out, "", nil)
				continue
			case "`else":
				if len(conds) == 0 {
					return fmt.Errorf("%s:%d: `else without `ifdef", p.file, srcLine)
				}
				c := &conds[len(conds)-1]
				if c.elseSeen {
					return fmt.Errorf("%s:%d: duplicate `else", p.file, srcLine)
				}
				c.elseSeen = true
				outer := true
				for _, cc := range conds[:len(conds)-1] {
					if !cc.active {
						outer = false
					}
				}
				c.active = outer && !c.taken
				c.taken = true
				p.emit(out, "", nil)
				continue
			case "`endif":
				if len(conds) == 0 {
					return fmt.Errorf("%s:%d: `endif without `ifdef", p.file, srcLine)
				}
				conds = conds[:len(conds)-1]
				p.emit(out, "", nil)
				continue
			case "`include":
				if !active {
					p.emit(out, "", nil)
					continue
				}
				path := strings.Trim(strings.TrimSpace(rest), "\"")
				if p.include == nil {
					return fmt.Errorf("%s:%d: `include %q with no includer configured", p.file, srcLine, path)
				}
				body, err := p.include(path)
				if err != nil {
					return fmt.Errorf("%s:%d: `include %q: %w", p.file, srcLine, path, err)
				}
				if err := p.run(body, out, conds); err != nil {
					return err
				}
				continue
			}
			// Unknown backtick word inside an inactive region: drop;
			// inside an active region it may be a macro use mid-line —
			// fall through to expansion.
		}

		if !active {
			p.emit(out, "", guards)
			continue
		}
		expanded, used, err := p.expand(line, srcLine, 0)
		if err != nil {
			return err
		}
		deps := append(guards, used...)
		p.emit(out, expanded, deps)
	}
	// Trailing split artifact: strings.Split gives k+1 entries for k
	// newlines; emit added a newline after each, so drop the final one.
	s := out.String()
	if strings.HasSuffix(s, "\n") {
		out.Reset()
		out.WriteString(s[:len(s)-1])
	}
	if len(conds) != 0 {
		return fmt.Errorf("%s: unterminated `ifdef (guard %q)", p.file, conds[len(conds)-1].guard)
	}
	return nil
}

func (p *processor) emit(out *strings.Builder, line string, deps []string) {
	p.outLine++
	out.WriteString(line)
	out.WriteByte('\n')
	if len(deps) > 0 {
		seen := map[string]bool{}
		var uniq []string
		for _, d := range deps {
			if d != "" && !seen[d] {
				seen[d] = true
				uniq = append(uniq, d)
			}
		}
		sort.Strings(uniq)
		p.res.LineDeps[p.outLine] = uniq
	}
}

// expand substitutes `NAME macro uses in line.
func (p *processor) expand(line string, srcLine, depth int) (string, []string, error) {
	if depth > maxExpandDepth {
		return "", nil, fmt.Errorf("%s:%d: macro expansion too deep (recursive `define?)", p.file, srcLine)
	}
	var used []string
	var out strings.Builder
	for i := 0; i < len(line); {
		c := line[i]
		if c != '`' {
			out.WriteByte(c)
			i++
			continue
		}
		j := i + 1
		for j < len(line) && (line[j] == '_' || isAlnum(line[j])) {
			j++
		}
		name := line[i+1 : j]
		m, ok := p.res.Macros[name]
		if !ok {
			return "", nil, fmt.Errorf("%s:%d: undefined macro `%s", p.file, srcLine, name)
		}
		used = append(used, name)
		sub, subUsed, err := p.expand(m.Body, srcLine, depth+1)
		if err != nil {
			return "", nil, err
		}
		used = append(used, subUsed...)
		out.WriteString(sub)
		i = j
	}
	return out.String(), used, nil
}

func isAlnum(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func splitDirective(line string) (word, rest string) {
	i := 1
	for i < len(line) && (line[i] == '_' || isAlnum(line[i])) {
		i++
	}
	return line[:i], line[i:]
}

func splitMacroDef(rest string) (name, body string) {
	rest = strings.TrimSpace(rest)
	i := 0
	for i < len(rest) && (rest[i] == '_' || isAlnum(rest[i])) {
		i++
	}
	if i == 0 {
		return "", ""
	}
	return rest[:i], strings.TrimSpace(stripLineComment(rest[i:]))
}

func stripLineComment(s string) string {
	if k := strings.Index(s, "//"); k >= 0 {
		return s[:k]
	}
	return s
}
