package preproc

import (
	"fmt"
	"strings"
	"testing"
)

func mustProcess(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	r, err := Process("t.v", src, opts)
	if err != nil {
		t.Fatalf("Process: %v", err)
	}
	return r
}

func TestDefineAndExpand(t *testing.T) {
	src := "`define W 8\nwire [`W-1:0] x;"
	r := mustProcess(t, src, Options{})
	lines := strings.Split(r.Text, "\n")
	if lines[0] != "" {
		t.Errorf("directive line should be blank, got %q", lines[0])
	}
	if lines[1] != "wire [8-1:0] x;" {
		t.Errorf("expanded line %q", lines[1])
	}
	if deps := r.LineDeps[2]; len(deps) != 1 || deps[0] != "W" {
		t.Errorf("line 2 deps = %v", deps)
	}
}

func TestNestedMacro(t *testing.T) {
	src := "`define A 2\n`define B (`A+1)\nassign x = `B;"
	r := mustProcess(t, src, Options{})
	if !strings.Contains(r.Text, "assign x = (2+1);") {
		t.Errorf("text %q", r.Text)
	}
	deps := r.LineDeps[3]
	if len(deps) != 2 || deps[0] != "A" || deps[1] != "B" {
		t.Errorf("deps %v", deps)
	}
}

func TestIfdefTaken(t *testing.T) {
	src := "`define FEATURE 1\n`ifdef FEATURE\nassign a = 1;\n`else\nassign a = 0;\n`endif"
	r := mustProcess(t, src, Options{})
	if !strings.Contains(r.Text, "assign a = 1;") || strings.Contains(r.Text, "assign a = 0;") {
		t.Errorf("text %q", r.Text)
	}
	if deps := r.LineDeps[3]; len(deps) != 1 || deps[0] != "FEATURE" {
		t.Errorf("deps %v", deps)
	}
}

func TestIfndefAndElse(t *testing.T) {
	src := "`ifndef MISSING\nassign a = 1;\n`else\nassign a = 0;\n`endif"
	r := mustProcess(t, src, Options{})
	if !strings.Contains(r.Text, "assign a = 1;") || strings.Contains(r.Text, "assign a = 0;") {
		t.Errorf("text %q", r.Text)
	}
}

func TestNestedIfdef(t *testing.T) {
	src := "`define A 1\n`ifdef A\n`ifdef B\nx\n`else\ny\n`endif\n`endif"
	r := mustProcess(t, src, Options{})
	if strings.Contains(r.Text, "x") || !strings.Contains(r.Text, "y") {
		t.Errorf("text %q", r.Text)
	}
}

func TestInactiveOuterSuppressesInnerElse(t *testing.T) {
	src := "`ifdef NO\n`ifndef ALSO_NO\nhidden\n`endif\n`endif\nvisible"
	r := mustProcess(t, src, Options{})
	if strings.Contains(r.Text, "hidden") || !strings.Contains(r.Text, "visible") {
		t.Errorf("text %q", r.Text)
	}
}

func TestUndef(t *testing.T) {
	src := "`define X 1\n`undef X\n`ifdef X\nbad\n`endif"
	r := mustProcess(t, src, Options{})
	if strings.Contains(r.Text, "bad") {
		t.Errorf("text %q", r.Text)
	}
	if lines := r.DefineLines["X"]; len(lines) != 2 {
		t.Errorf("DefineLines %v", lines)
	}
}

func TestSeededDefines(t *testing.T) {
	r := mustProcess(t, "value `V", Options{Defines: map[string]string{"V": "42"}})
	if strings.TrimSpace(r.Text) != "value 42" {
		t.Errorf("text %q", r.Text)
	}
}

func TestInclude(t *testing.T) {
	inc := func(path string) (string, error) {
		if path == "defs.vh" {
			return "`define W 16", nil
		}
		return "", fmt.Errorf("not found")
	}
	src := "`include \"defs.vh\"\nwire [`W-1:0] x;"
	r := mustProcess(t, src, Options{Include: inc})
	if !strings.Contains(r.Text, "wire [16-1:0] x;") {
		t.Errorf("text %q", r.Text)
	}
}

func TestIncludeMissing(t *testing.T) {
	if _, err := Process("t.v", "`include \"nope.vh\"", Options{Include: func(string) (string, error) { return "", fmt.Errorf("no") }}); err == nil {
		t.Fatal("want error")
	}
	if _, err := Process("t.v", "`include \"nope.vh\"", Options{}); err == nil {
		t.Fatal("want error with nil includer")
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"`else",
		"`endif",
		"`ifdef X\n",
		"use `UNDEFINED here",
		"`define",
	}
	for _, src := range cases {
		if _, err := Process("t.v", src, Options{}); err == nil {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestRecursiveMacroError(t *testing.T) {
	src := "`define A `A\nx `A"
	if _, err := Process("t.v", src, Options{}); err == nil {
		t.Fatal("want recursion error")
	}
}

func TestLineStructurePreserved(t *testing.T) {
	src := "`define X 1\na\n`ifdef X\nb\n`endif\nc"
	r := mustProcess(t, src, Options{})
	lines := strings.Split(r.Text, "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6: %q", len(lines), r.Text)
	}
	if lines[1] != "a" || lines[3] != "b" || lines[5] != "c" {
		t.Errorf("lines %q", lines)
	}
}

func TestRedefine(t *testing.T) {
	src := "`define W 8\n`define W 16\nwire [`W:0] x;"
	r := mustProcess(t, src, Options{})
	if !strings.Contains(r.Text, "wire [16:0] x;") {
		t.Errorf("text %q", r.Text)
	}
	if lines := r.DefineLines["W"]; len(lines) != 2 || lines[0] != 1 || lines[1] != 2 {
		t.Errorf("DefineLines %v", lines)
	}
}

func TestDefineBodyCommentStripped(t *testing.T) {
	r := mustProcess(t, "`define W 8 // width\nx `W", Options{})
	if !strings.Contains(r.Text, "x 8") || strings.Contains(r.Text, "width") {
		t.Errorf("text %q", r.Text)
	}
}
