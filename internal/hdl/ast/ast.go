// Package ast defines the abstract syntax tree for LiveHDL, the Verilog
// subset used by this LiveSim reproduction.
//
// The tree deliberately keeps source extents on modules: LiveParser splits
// a file into module regions and diffs them individually, so each Module
// records the byte range it was parsed from.
package ast

import "livesim/internal/hdl/token"

// SourceFile is one parsed source unit.
type SourceFile struct {
	Name    string
	Modules []*Module
}

// Module is one `module ... endmodule` definition.
type Module struct {
	Name   string
	Params []*Param
	Ports  []*Port
	Items  []Item
	Pos    token.Pos // position of the `module` keyword
	End    token.Pos // position just after `endmodule`
}

// Param is a module parameter with an optional default.
type Param struct {
	Name    string
	Default Expr
	Pos     token.Pos
}

// Dir is a port direction.
type Dir uint8

// Port directions.
const (
	Input Dir = iota
	Output
	Inout
)

func (d Dir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return "inout"
	}
}

// Range is a [MSB:LSB] vector range. A nil *Range means a 1-bit signal.
type Range struct {
	MSB, LSB Expr
}

// Port is one module port.
type Port struct {
	Name   string
	Dir    Dir
	Range  *Range
	IsReg  bool
	Signed bool
	Pos    token.Pos
}

// Item is a module-level item.
type Item interface{ isItem() }

// NetKind distinguishes wire/reg/integer declarations.
type NetKind uint8

// Net kinds.
const (
	Wire NetKind = iota
	Reg
	Integer
)

func (k NetKind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Reg:
		return "reg"
	default:
		return "integer"
	}
}

// NetDecl declares wires, regs, integers and memories.
type NetDecl struct {
	Kind   NetKind
	Name   string
	Range  *Range // element width; nil = 1 bit (integer implies [31:0])
	Array  *Range // non-nil for memories: reg [7:0] m [0:255]
	Signed bool
	Init   Expr // wire w = expr; sugar for a continuous assign
	Pos    token.Pos
}

// LocalParam is a localparam declaration.
type LocalParam struct {
	Name  string
	Value Expr
	Pos   token.Pos
}

// ContAssign is a continuous assignment: assign lhs = rhs;
type ContAssign struct {
	LHS Expr
	RHS Expr
	Pos token.Pos
}

// EdgeKind describes an always block's sensitivity.
type EdgeKind uint8

// Sensitivity kinds.
const (
	Comb    EdgeKind = iota // always @(*) or always @*
	Posedge                 // always @(posedge clk)
	Negedge                 // always @(negedge clk)
)

// AlwaysBlock is an always process.
type AlwaysBlock struct {
	Edge  EdgeKind
	Clock string // sensitivity signal for Posedge/Negedge
	Body  Stmt
	Pos   token.Pos
}

// NamedConn is a named binding (.name(expr)) or positional (Name == "").
type NamedConn struct {
	Name string
	Expr Expr // nil for explicitly unconnected .name()
	Pos  token.Pos
}

// Instance instantiates a child module.
type Instance struct {
	ModName string
	Name    string
	Params  []NamedConn
	Conns   []NamedConn
	Pos     token.Pos
}

func (*NetDecl) isItem()     {}
func (*LocalParam) isItem()  {}
func (*ContAssign) isItem()  {}
func (*AlwaysBlock) isItem() {}
func (*Instance) isItem()    {}

// Stmt is a procedural statement.
type Stmt interface{ isStmt() }

// Block is a begin...end statement list.
type Block struct {
	Stmts []Stmt
	Pos   token.Pos
}

// If is a procedural if/else.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  token.Pos
}

// CaseItem is one arm of a case statement; Exprs == nil means default.
type CaseItem struct {
	Exprs []Expr
	Body  Stmt
}

// Case is a case/casez statement.
type Case struct {
	Subject Expr
	Items   []CaseItem
	Casez   bool
	Pos     token.Pos
}

// Assign is a procedural assignment, blocking (=) or non-blocking (<=).
type Assign struct {
	LHS         Expr
	RHS         Expr
	NonBlocking bool
	Pos         token.Pos
}

// SysCall is a system task statement such as $display or $finish.
type SysCall struct {
	Name string
	Args []Expr
	Pos  token.Pos
}

func (*Block) isStmt()   {}
func (*If) isStmt()      {}
func (*Case) isStmt()    {}
func (*Assign) isStmt()  {}
func (*SysCall) isStmt() {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// Ident is a name reference.
type Ident struct {
	Name string
	Pos  token.Pos
}

// Number is a literal. Width 0 means unsized (32-bit by Verilog rules, but
// context-extended at lowering). XMask marks bits written as x/z/? in the
// literal; casez comparison ignores those bits.
type Number struct {
	Value  uint64
	Width  int
	Signed bool
	XMask  uint64
	Pos    token.Pos
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	Neg     UnaryOp = iota // -
	LogNot                 // !
	BitNot                 // ~
	RedAnd                 // &
	RedOr                  // |
	RedXor                 // ^
	RedNand                // ~&
	RedNor                 // ~|
	RedXnor                // ~^
	Plus                   // +
)

// Unary is a unary expression.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos token.Pos
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Xnor
	LogAnd
	LogOr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	Shl
	Shr
	Sshr
)

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
	Pos  token.Pos
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Pos              token.Pos
}

// Index is x[i]: a bit select on a vector or an element select on a memory.
type Index struct {
	X     Expr
	Index Expr
	Pos   token.Pos
}

// PartSelect is x[msb:lsb] with constant bounds.
type PartSelect struct {
	X        Expr
	MSB, LSB Expr
	Pos      token.Pos
}

// Concat is {a, b, c}.
type Concat struct {
	Parts []Expr
	Pos   token.Pos
}

// Repl is {N{x}}.
type Repl struct {
	Count Expr
	Value Expr
	Pos   token.Pos
}

// SysFunc is $signed(x), $unsigned(x) and friends in expression position.
type SysFunc struct {
	Name string
	Args []Expr
	Pos  token.Pos
}

func (*Ident) isExpr()      {}
func (*Number) isExpr()     {}
func (*Unary) isExpr()      {}
func (*Binary) isExpr()     {}
func (*Ternary) isExpr()    {}
func (*Index) isExpr()      {}
func (*PartSelect) isExpr() {}
func (*Concat) isExpr()     {}
func (*Repl) isExpr()       {}
func (*SysFunc) isExpr()    {}
