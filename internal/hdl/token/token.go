// Package token defines the lexical tokens of LiveHDL, the Verilog subset
// understood by this LiveSim reproduction, together with source positions.
//
// The token set matters beyond parsing: LiveParser (Section III-C of the
// paper) decides whether an edit changed *behaviour* by comparing token
// streams with comments and whitespace stripped, so the lexer must classify
// trivia tokens explicitly rather than silently discarding them.
package token

import "fmt"

// Kind enumerates the lexical token kinds of LiveHDL.
type Kind uint8

// Token kinds. Trivia (whitespace, comments) are produced only when the
// lexer is run in KeepTrivia mode; the parser never sees them.
const (
	EOF Kind = iota
	Error
	Ident     // module names, signal names, instance names
	SysIdent  // $signed, $unsigned, $display, $finish, $readmemh
	Number    // 42, 8'hFF, 4'b1010, 'd9
	String    // "..." (used by $display and `include)
	Directive // `define, `ifdef, ... (only before preprocessing)

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrack   // [
	RBrack   // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Semi     // ;
	Colon    // :
	Dot      // .
	Hash     // #
	At       // @
	Question // ?
	Assign   // =
	NbAssign // <=  (context decides less-equal vs non-blocking assign)
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Amp      // &
	Pipe     // |
	Caret    // ^
	Tilde    // ~
	Bang     // !
	Lt       // <
	Gt       // >
	LtEq     // <= (alias of NbAssign; parser disambiguates)
	GtEq     // >=
	EqEq     // ==
	BangEq   // !=
	AmpAmp   // &&
	PipePipe // ||
	Shl      // <<
	Shr      // >>
	Sshr     // >>>

	// Keywords.
	KwModule
	KwEndmodule
	KwInput
	KwOutput
	KwInout
	KwWire
	KwReg
	KwParameter
	KwLocalparam
	KwAssign
	KwAlways
	KwPosedge
	KwNegedge
	KwBegin
	KwEnd
	KwIf
	KwElse
	KwCase
	KwCasez
	KwEndcase
	KwDefault
	KwInteger
	KwGenvar
	KwGenerate
	KwEndgenerate
	KwFor
	KwFunction
	KwEndfunction
	KwSigned

	// Trivia (KeepTrivia mode only).
	Whitespace
	LineComment  // // ...
	BlockComment // /* ... */

	kindCount
)

var kindNames = [...]string{
	EOF: "EOF", Error: "error", Ident: "identifier", SysIdent: "system identifier",
	Number: "number", String: "string", Directive: "directive",
	LParen: "(", RParen: ")", LBrack: "[", RBrack: "]", LBrace: "{", RBrace: "}",
	Comma: ",", Semi: ";", Colon: ":", Dot: ".", Hash: "#", At: "@",
	Question: "?", Assign: "=", NbAssign: "<=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=", EqEq: "==", BangEq: "!=",
	AmpAmp: "&&", PipePipe: "||", Shl: "<<", Shr: ">>", Sshr: ">>>",
	KwModule: "module", KwEndmodule: "endmodule", KwInput: "input",
	KwOutput: "output", KwInout: "inout", KwWire: "wire", KwReg: "reg",
	KwParameter: "parameter", KwLocalparam: "localparam", KwAssign: "assign",
	KwAlways: "always", KwPosedge: "posedge", KwNegedge: "negedge",
	KwBegin: "begin", KwEnd: "end", KwIf: "if", KwElse: "else",
	KwCase: "case", KwCasez: "casez", KwEndcase: "endcase", KwDefault: "default",
	KwInteger: "integer", KwGenvar: "genvar", KwGenerate: "generate",
	KwEndgenerate: "endgenerate", KwFor: "for", KwFunction: "function",
	KwEndfunction: "endfunction", KwSigned: "signed",
	Whitespace: "whitespace", LineComment: "line comment", BlockComment: "block comment",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsTrivia reports whether the kind carries no behavioural meaning.
// LiveParser strips trivia before deciding whether a change is behavioural.
func (k Kind) IsTrivia() bool {
	return k == Whitespace || k == LineComment || k == BlockComment
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwModule && k <= KwSigned }

// Keywords maps reserved words to their kinds.
var Keywords = map[string]Kind{
	"module": KwModule, "endmodule": KwEndmodule,
	"input": KwInput, "output": KwOutput, "inout": KwInout,
	"wire": KwWire, "reg": KwReg,
	"parameter": KwParameter, "localparam": KwLocalparam,
	"assign": KwAssign, "always": KwAlways,
	"posedge": KwPosedge, "negedge": KwNegedge,
	"begin": KwBegin, "end": KwEnd,
	"if": KwIf, "else": KwElse,
	"case": KwCase, "casez": KwCasez, "endcase": KwEndcase, "default": KwDefault,
	"integer": KwInteger, "genvar": KwGenvar,
	"generate": KwGenerate, "endgenerate": KwEndgenerate,
	"for": KwFor, "function": KwFunction, "endfunction": KwEndfunction,
	"signed": KwSigned,
}

// Pos is a byte offset plus 1-based line/column within a source file.
type Pos struct {
	File   string
	Offset int
	Line   int
	Col    int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	f := p.File
	if f == "" {
		f = "<input>"
	}
	return fmt.Sprintf("%s:%d:%d", f, p.Line, p.Col)
}

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Number, String, SysIdent, Directive, Error:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
