// Package livecompiler implements the LiveCompiler of Section III-C: it
// turns analyzed source into hot-loadable objects, recompiling only what
// changed and deciding — by comparing compiled output against a cached
// copy — whether a recompiled module actually "needs to be swapped into
// the simulation".
//
// The compilation unit is the elaborated specialization (module +
// parameter binding), so a 256-core mesh still compiles each stage once
// (Figure 4(d)). The object cache is keyed by everything that can affect
// the generated code: the module's behavioural token hash, its parameter
// binding, the codegen style, and the interface fingerprints of its
// children.
package livecompiler

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"livesim/internal/codegen"
	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/elab"
	"livesim/internal/liveparser"
	"livesim/internal/obs"
	"livesim/internal/vm"
)

// Stats reports what one build did — the raw material for the paper's
// Table VIII (compilation time) and Figure 8 (reload latency breakdown).
type Stats struct {
	ParseTime   time.Duration // preprocess + parse + fingerprint
	ElabTime    time.Duration
	CompileTime time.Duration
	Compiled    int // specializations actually compiled
	CacheHits   int // specializations served from cache
	DiskHits    int // cache hits satisfied from the on-disk object store
}

// Result is the outcome of a build.
type Result struct {
	TopKey string
	// Objects maps specialization keys to compiled objects. Unchanged
	// specializations keep their previous *vm.Object identity, which the
	// kernel uses to skip no-op swaps.
	Objects map[string]*vm.Object
	// Swapped lists specialization keys whose object changed (or is new)
	// relative to the previous build — the hot-reload set.
	Swapped []string
	// Removed lists specialization keys that no longer exist.
	Removed []string
	// Diff is the LiveParser change summary versus the previous build
	// (nil on the first build).
	Diff *liveparser.Diff
	// Stats breaks down where the time went.
	Stats Stats
}

// Compiler is a stateful incremental compiler for one design.
type Compiler struct {
	style     codegen.Style
	top       string
	overrides map[string]uint64

	prevAnalysis *liveparser.Analysis
	prevObjects  map[string]*vm.Object

	// cache maps content keys to compiled objects across builds.
	cache map[string]*vm.Object
	// objDir, when set, persists compiled objects as .lso files — the
	// on-disk shared-library analog of Table II's Object-Path column.
	objDir string

	// metrics, when set, receives per-build counters and phase latency
	// histograms (compile_* names). Nil disables at zero cost.
	metrics *obs.Registry

	// phaseHook, when set, is consulted at the start of each build phase
	// ("parse", "elab", "codegen"); an error aborts the build before the
	// phase runs. Fault-injection harnesses use it to fail a build at a
	// chosen point without touching compiler state.
	phaseHook func(phase string) error
}

// BuildState is an opaque capture of the compiler's last-successful-build
// identity, used by transactional callers: capture before a build, hand
// it back to Rollback if the built objects could not be swapped in.
type BuildState struct {
	analysis *liveparser.Analysis
	objects  map[string]*vm.Object
}

// New creates a compiler for the module named top, using the given
// codegen style and optional top-level parameter overrides.
func New(top string, style codegen.Style, overrides map[string]uint64) *Compiler {
	return &Compiler{
		top:       top,
		style:     style,
		overrides: overrides,
		cache:     make(map[string]*vm.Object),
	}
}

// SetObjectDir enables the persistent object cache: compiled objects are
// written to dir as .lso files and reloaded on cache misses, so a fresh
// session reuses a previous session's compilation work.
func (c *Compiler) SetObjectDir(dir string) { c.objDir = dir }

// SetMetrics points the compiler at a metrics registry (nil = off). Each
// build updates compile_builds, compile_cache_hits/compile_disk_hits,
// compile_compiled, and the compile_{parse,elab,codegen}_seconds
// latency histograms.
func (c *Compiler) SetMetrics(reg *obs.Registry) { c.metrics = reg }

// SetPhaseHook installs (or clears, with nil) the per-phase build hook.
func (c *Compiler) SetPhaseHook(fn func(phase string) error) { c.phaseHook = fn }

// State captures the last-build identity (diff baseline + object table)
// for a later Rollback.
func (c *Compiler) State() BuildState {
	return BuildState{analysis: c.prevAnalysis, objects: c.prevObjects}
}

// Rollback restores a previously captured build state, so the next Build
// diffs against the objects actually live in the simulation rather than
// against a build whose swap failed. The content-addressed object cache
// is deliberately kept: a corrected retry still reuses compiled objects.
func (c *Compiler) Rollback(st BuildState) {
	c.prevAnalysis = st.analysis
	c.prevObjects = st.objects
}

// ObjectFile returns the on-disk path an object with the given content
// key would use ("" when no object directory is configured).
func (c *Compiler) objectFile(contentKey string) string {
	if c.objDir == "" {
		return ""
	}
	h := fnv.New64a()
	h.Write([]byte(contentKey))
	return filepath.Join(c.objDir, fmt.Sprintf("%016x.lso", h.Sum64()))
}

// Objects returns the object table of the last successful build.
func (c *Compiler) Objects() map[string]*vm.Object { return c.prevObjects }

// Resolver exposes the last build's objects to the simulation kernel.
func (c *Compiler) Resolver() func(key string) (*vm.Object, error) {
	return func(key string) (*vm.Object, error) {
		if o, ok := c.prevObjects[key]; ok {
			return o, nil
		}
		return nil, fmt.Errorf("no compiled object %q", key)
	}
}

// Build compiles a source snapshot. The first call is a full build; later
// calls are incremental: only dirty modules recompile, and Swapped lists
// exactly the objects whose code changed.
func (c *Compiler) Build(src liveparser.Source) (*Result, error) {
	return c.BuildSpan(src, nil)
}

// BuildSpan is Build with trace-span context: when parent is non-nil the
// parse, elab and codegen phases are recorded as child spans, so a traced
// live loop shows where build time went.
func (c *Compiler) BuildSpan(src liveparser.Source, parent *obs.Span) (*Result, error) {
	res := &Result{Objects: make(map[string]*vm.Object)}

	phase := func(name string) error {
		if c.phaseHook == nil {
			return nil
		}
		return c.phaseHook(name)
	}

	sp := parent.Child("parse")
	if err := phase("parse"); err != nil {
		return nil, err
	}
	t0 := time.Now()
	analysis, err := liveparser.Analyze(src)
	if err != nil {
		return nil, err
	}
	res.Stats.ParseTime = time.Since(t0)
	sp.End()

	if c.prevAnalysis != nil {
		res.Diff = liveparser.Compare(c.prevAnalysis, analysis)
	}

	srcs := make(map[string]*ast.Module, len(analysis.Modules))
	for name, mi := range analysis.Modules {
		srcs[name] = mi.AST
	}
	sp = parent.Child("elab")
	if err := phase("elab"); err != nil {
		return nil, err
	}
	t1 := time.Now()
	design, err := elab.Elaborate(srcs, c.top, c.overrides)
	if err != nil {
		return nil, err
	}
	res.Stats.ElabTime = time.Since(t1)
	sp.End()
	res.TopKey = design.TopKey

	sp = parent.Child("codegen")
	if err := phase("codegen"); err != nil {
		return nil, err
	}
	t2 := time.Now()
	for _, key := range design.Order {
		em := design.Modules[key]
		ck := c.contentKey(analysis, em)
		if obj, ok := c.cache[ck]; ok {
			res.Objects[key] = obj
			res.Stats.CacheHits++
			continue
		}
		if file := c.objectFile(ck); file != "" {
			if data, err := os.ReadFile(file); err == nil {
				if obj, err := vm.DecodeObject(data); err == nil && obj.Key == em.Key {
					c.cache[ck] = obj
					res.Objects[key] = obj
					res.Stats.CacheHits++
					res.Stats.DiskHits++
					continue
				}
			}
		}
		obj, err := codegen.Compile(em, codegen.Options{
			Style:   c.style,
			SrcPath: analysis.Modules[em.Name].File + "#" + em.Name,
		})
		if err != nil {
			return nil, err
		}
		c.cache[ck] = obj
		res.Objects[key] = obj
		res.Stats.Compiled++
		if file := c.objectFile(ck); file != "" {
			// Best effort: a failed write only loses future reuse.
			_ = os.WriteFile(file, vm.EncodeObject(obj), 0o644)
		}
	}
	res.Stats.CompileTime = time.Since(t2)
	sp.Annotate(obs.U64("compiled", uint64(res.Stats.Compiled)),
		obs.U64("cache_hits", uint64(res.Stats.CacheHits)))
	sp.End()

	if c.metrics != nil {
		c.metrics.Counter("compile_builds").Inc()
		c.metrics.Counter("compile_cache_hits").Add(uint64(res.Stats.CacheHits))
		c.metrics.Counter("compile_disk_hits").Add(uint64(res.Stats.DiskHits))
		c.metrics.Counter("compile_compiled").Add(uint64(res.Stats.Compiled))
		c.metrics.Histogram("compile_parse_seconds", nil).Observe(res.Stats.ParseTime.Seconds())
		c.metrics.Histogram("compile_elab_seconds", nil).Observe(res.Stats.ElabTime.Seconds())
		c.metrics.Histogram("compile_codegen_seconds", nil).Observe(res.Stats.CompileTime.Seconds())
	}

	// Swap decision: hash-compare against the previous build.
	for key, obj := range res.Objects {
		prev, had := c.prevObjects[key]
		if !had || prev.Hash() != obj.Hash() {
			res.Swapped = append(res.Swapped, key)
		}
	}
	for key := range c.prevObjects {
		if _, still := res.Objects[key]; !still {
			res.Removed = append(res.Removed, key)
		}
	}
	sort.Strings(res.Swapped)
	sort.Strings(res.Removed)

	c.prevAnalysis = analysis
	c.prevObjects = res.Objects
	return res, nil
}

// contentKey fingerprints everything that can influence the compiled
// object of one specialization.
func (c *Compiler) contentKey(a *liveparser.Analysis, em *elab.Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|style=%d|body=%x", em.Key, c.style, a.Modules[em.Name].BodyHash)
	for _, inst := range em.Instances {
		childInfo := a.Modules[inst.Child.Name]
		fmt.Fprintf(&sb, "|child=%s:%x", inst.ChildKey, childInfo.IfaceHash)
	}
	return sb.String()
}
