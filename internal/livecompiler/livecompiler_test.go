package livecompiler

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"livesim/internal/codegen"
	"livesim/internal/liveparser"
)

const design = `
module stage_a (input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d + 1;
endmodule
module stage_b (input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d * 2;
endmodule
module pipe (input clk, input [7:0] in, output [7:0] out);
  wire [7:0] mid;
  stage_a a0 (.clk(clk), .d(in), .q(mid));
  stage_b b0 (.clk(clk), .d(mid), .q(out));
endmodule
`

func files(s string) liveparser.Source {
	return liveparser.Source{Files: map[string]string{"design.v": s}}
}

func TestFullBuild(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	res, err := c.Build(files(design))
	if err != nil {
		t.Fatal(err)
	}
	if res.TopKey != "pipe" {
		t.Errorf("top %q", res.TopKey)
	}
	if len(res.Objects) != 3 {
		t.Errorf("objects %d", len(res.Objects))
	}
	if res.Stats.Compiled != 3 || res.Stats.CacheHits != 0 {
		t.Errorf("stats %+v", res.Stats)
	}
	if len(res.Swapped) != 3 {
		t.Errorf("first build should swap everything: %v", res.Swapped)
	}
	if res.Diff != nil {
		t.Error("first build has no diff")
	}
}

func TestIncrementalOnlyRecompilesDirty(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	if _, err := c.Build(files(design)); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(design, "d + 1", "d + 3", 1)
	res, err := c.Build(files(edited))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Compiled != 1 {
		t.Errorf("compiled %d, want 1 (only stage_a)", res.Stats.Compiled)
	}
	if res.Stats.CacheHits != 2 {
		t.Errorf("cache hits %d, want 2", res.Stats.CacheHits)
	}
	if len(res.Swapped) != 1 || res.Swapped[0] != "stage_a" {
		t.Errorf("swapped %v", res.Swapped)
	}
	// Unchanged objects must keep identity so the kernel skips them:
	// a no-op rebuild must return identical pointers.
	res2, err := c.Build(files(edited))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Swapped) != 0 {
		t.Errorf("no-op rebuild swapped %v", res2.Swapped)
	}
	if res2.Objects["pipe"] != res.Objects["pipe"] {
		t.Error("unchanged object lost identity")
	}
}

func TestCommentEditSwapsNothing(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	if _, err := c.Build(files(design)); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(design, "q <= d + 1;", "q <= d + 1; // same", 1)
	res, err := c.Build(files(edited))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swapped) != 0 {
		t.Errorf("comment edit swapped %v", res.Swapped)
	}
	if res.Diff == nil || !res.Diff.NoChange() {
		t.Errorf("diff %+v", res.Diff)
	}
	if res.Stats.Compiled != 0 {
		t.Errorf("comment edit recompiled %d modules", res.Stats.Compiled)
	}
}

func TestInterfaceChangeSwapsParentToo(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	if _, err := c.Build(files(design)); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(design,
		"module stage_a (input clk, input [7:0] d, output reg [7:0] q);",
		"module stage_a (input clk, input en, input [7:0] d, output reg [7:0] q);", 1)
	edited = strings.Replace(edited,
		"always @(posedge clk) q <= d + 1;",
		"always @(posedge clk) if (en) q <= d + 1;", 1)
	edited = strings.Replace(edited,
		"stage_a a0 (.clk(clk), .d(in), .q(mid));",
		"stage_a a0 (.clk(clk), .en(1'b1), .d(in), .q(mid));", 1)
	res, err := c.Build(files(edited))
	if err != nil {
		t.Fatal(err)
	}
	wantSwap := map[string]bool{"stage_a": true, "pipe": true}
	if len(res.Swapped) != 2 || !wantSwap[res.Swapped[0]] || !wantSwap[res.Swapped[1]] {
		t.Errorf("swapped %v", res.Swapped)
	}
}

func TestParameterSpecializationKeys(t *testing.T) {
	src := `
module leaf #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = x + 1;
endmodule
module top ();
  wire [3:0] a, b;
  wire [7:0] c, d;
  leaf #(.W(4)) l4 (.x(a), .y(b));
  leaf #(.W(8)) l8 (.x(c), .y(d));
endmodule
`
	c := New("top", codegen.StyleGrouped, nil)
	res, err := c.Build(liveparser.Source{Files: map[string]string{"t.v": src}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Objects["leaf#W=4"]; !ok {
		t.Error("missing leaf#W=4")
	}
	if _, ok := res.Objects["leaf#W=8"]; !ok {
		t.Error("missing leaf#W=8")
	}
	if res.Stats.Compiled != 3 {
		t.Errorf("compiled %d", res.Stats.Compiled)
	}
}

func TestRemovedModules(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	if _, err := c.Build(files(design)); err != nil {
		t.Fatal(err)
	}
	// Replace stage_b instantiation with stage_a; stage_b object vanishes.
	edited := strings.Replace(design, "stage_b b0", "stage_a b0", 1)
	edited = strings.Replace(edited, "module stage_b", "module stage_b_unused", 1)
	res, err := c.Build(files(edited))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Removed {
		if r == "stage_b" {
			found = true
		}
	}
	if !found {
		t.Errorf("removed %v", res.Removed)
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	c := New("pipe", codegen.StyleGrouped, nil)
	if _, err := c.Build(files("module broken (")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := c.Build(files("module nottop (); endmodule")); err == nil {
		t.Fatal("want missing-top error")
	}
}

func TestOverrides(t *testing.T) {
	src := `
module m #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = x;
endmodule
`
	c := New("m", codegen.StyleGrouped, map[string]uint64{"W": 16})
	res, err := c.Build(liveparser.Source{Files: map[string]string{"t.v": src}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopKey != "m#W=16" {
		t.Errorf("top %q", res.TopKey)
	}
}

// TestPersistentObjectCache: a second compiler instance (a "new session")
// reuses the first one's on-disk objects instead of recompiling.
func TestPersistentObjectCache(t *testing.T) {
	dir := t.TempDir()
	c1 := New("pipe", codegen.StyleGrouped, nil)
	c1.SetObjectDir(dir)
	res1, err := c1.Build(files(design))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Compiled != 3 || res1.Stats.DiskHits != 0 {
		t.Fatalf("first build stats %+v", res1.Stats)
	}

	c2 := New("pipe", codegen.StyleGrouped, nil)
	c2.SetObjectDir(dir)
	res2, err := c2.Build(files(design))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Compiled != 0 || res2.Stats.DiskHits != 3 {
		t.Fatalf("second build stats %+v", res2.Stats)
	}
	for key, o1 := range res1.Objects {
		if res2.Objects[key].Hash() != o1.Hash() {
			t.Errorf("disk-loaded %s differs", key)
		}
	}

	// A corrupted object file falls back to compilation.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("object files %d", len(entries))
	}
	bad := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := New("pipe", codegen.StyleGrouped, nil)
	c3.SetObjectDir(dir)
	res3, err := c3.Build(files(design))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Compiled != 1 || res3.Stats.DiskHits != 2 {
		t.Fatalf("corrupt-fallback stats %+v", res3.Stats)
	}
}
