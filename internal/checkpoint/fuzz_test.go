package checkpoint

import (
	"bytes"
	"testing"
)

// fuzzSeeds are valid encodings plus characteristic corruptions, so the
// fuzzer starts from the interesting region of the input space.
func fuzzSeeds() [][]byte {
	s := NewStore()
	small := s.Add(mkState(3), "v0", 0).Bytes()
	big := s.Add(mkState(1_000_000), "v9", 42)
	big.Aux = map[string][]byte{"tb0": bytes.Repeat([]byte{7}, 100)}
	seeds := [][]byte{
		small,
		EncodeFile(big),
		EncodeFile(s.Add(mkState(0), "", 0)),
		{}, {0}, []byte("LSCP"), []byte("LSCPxxxx"),
	}
	// Truncations of a valid state blob.
	for _, n := range []int{1, 8, 16, len(small) / 2, len(small) - 1} {
		if n < len(small) {
			seeds = append(seeds, small[:n])
		}
	}
	// Single bit flips in a valid state blob.
	for _, off := range []int{0, 8, 16, len(small) - 1} {
		c := append([]byte(nil), small...)
		c[off] ^= 0x80
		seeds = append(seeds, c)
	}
	return seeds
}

// FuzzDecodeState: arbitrary bytes must either decode or error — never
// panic, and never allocate beyond what the input length can justify
// (the count bounds inside DecodeState enforce the latter; a violation
// shows up as an OOM/timeout under the fuzzer).
func FuzzDecodeState(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err == nil && st == nil {
			t.Fatal("nil state with nil error")
		}
		if err == nil {
			// A clean decode must re-encode to an equivalent state: decode
			// again and compare cycle/node shape as a cheap invariant.
			if st2, err2 := DecodeState(data); err2 != nil || st2.Cycle != st.Cycle || len(st2.Nodes) != len(st.Nodes) {
				t.Fatalf("decode not deterministic: %v", err2)
			}
		}
	})
}

// FuzzDecodeFile: the versioned container decoder under arbitrary bytes,
// including the legacy fallback path.
func FuzzDecodeFile(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fc, err := DecodeFile(data)
		if err != nil {
			return
		}
		if fc == nil || fc.State == nil {
			t.Fatal("clean decode returned nil checkpoint or state")
		}
		if fc.FormatVersion > FileFormatVersion {
			t.Fatalf("accepted future format version %d", fc.FormatVersion)
		}
	})
}
