package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mkFileCheckpoint(cycle uint64) *Checkpoint {
	s := NewStore()
	cp := s.Add(mkState(cycle), "v3", 7)
	cp.Aux = map[string][]byte{
		"tb0": {1, 2, 3},
		"tb1": nil,
		"tb2": []byte("counter-state"),
	}
	return cp
}

func TestFileRoundTrip(t *testing.T) {
	cp := mkFileCheckpoint(42)
	data := EncodeFile(cp)
	fc, err := DecodeFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if fc.FormatVersion != FileFormatVersion {
		t.Errorf("format version %d", fc.FormatVersion)
	}
	if fc.Version != "v3" || fc.HistoryPos != 7 {
		t.Errorf("version %q historyPos %d", fc.Version, fc.HistoryPos)
	}
	if !reflect.DeepEqual(fc.State, cp.State) {
		t.Errorf("state mismatch:\n%+v\n%+v", fc.State, cp.State)
	}
	// A nil aux blob round-trips as empty; compare per key.
	if len(fc.Aux) != 3 || string(fc.Aux["tb2"]) != "counter-state" ||
		string(fc.Aux["tb0"]) != "\x01\x02\x03" || len(fc.Aux["tb1"]) != 0 {
		t.Errorf("aux %v", fc.Aux)
	}
}

func TestFileEncodeDeterministic(t *testing.T) {
	a := EncodeFile(mkFileCheckpoint(9))
	b := EncodeFile(mkFileCheckpoint(9))
	if !reflect.DeepEqual(a, b) {
		t.Error("encoding is not deterministic")
	}
}

// TestFileLegacyCompat: a raw pre-versioned state blob still decodes,
// carrying state only.
func TestFileLegacyCompat(t *testing.T) {
	s := NewStore()
	cp := s.Add(mkState(11), "v0", 0)
	fc, err := DecodeFile(cp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if fc.FormatVersion != 0 || fc.HistoryPos != -1 || fc.Aux != nil {
		t.Errorf("legacy decode %+v", fc)
	}
	if !reflect.DeepEqual(fc.State, cp.State) {
		t.Error("legacy state mismatch")
	}
}

// TestFileRejectsCorruption: flipping any single byte of a valid file
// must produce an error (CRC, header or legacy-parse), never a panic or
// a silently wrong decode.
func TestFileRejectsCorruption(t *testing.T) {
	orig := EncodeFile(mkFileCheckpoint(13))
	for off := 0; off < len(orig); off++ {
		data := append([]byte(nil), orig...)
		data[off] ^= 0xff
		fc, err := DecodeFile(data)
		if err == nil {
			// The only acceptable clean decode is a flip inside the CRC
			// field itself being... no: a CRC-field flip mismatches the
			// payload checksum. Every flip must error.
			t.Fatalf("byte %d: corruption not detected (decoded %+v)", off, fc)
		}
	}
}

func TestFileRejectsTruncation(t *testing.T) {
	orig := EncodeFile(mkFileCheckpoint(21))
	for _, n := range []int{0, 1, 3, 4, 11, fileHeaderLen - 1, fileHeaderLen, fileHeaderLen + 5, len(orig) / 2, len(orig) - 1} {
		if n >= len(orig) {
			continue
		}
		if _, err := DecodeFile(orig[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestFileRejectsFutureVersion(t *testing.T) {
	data := EncodeFile(mkFileCheckpoint(5))
	binary.LittleEndian.PutUint32(data[4:], FileFormatVersion+1)
	_, err := DecodeFile(data)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("future version not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("1..%d", FileFormatVersion)) {
		t.Errorf("error should name the supported range: %v", err)
	}
}

// TestFileBoundedAux: a corrupt aux count must be rejected by the bounds
// check before any allocation sized from it.
func TestFileBoundedAux(t *testing.T) {
	cp := mkFileCheckpoint(5)
	data := EncodeFile(cp)
	// Locate the aux-count field: version-string len+bytes, historyPos,
	// then the count.
	off := fileHeaderLen + 8 + len(cp.Version) + 8
	binary.LittleEndian.PutUint64(data[off:], 1<<60)
	// Fix the CRC so the bounds check (not the checksum) is what trips.
	crc := crc32.ChecksumIEEE(data[fileHeaderLen:])
	binary.LittleEndian.PutUint32(data[8:], crc)
	_, err := DecodeFile(data)
	if err == nil || !strings.Contains(err.Error(), "aux entries") {
		t.Fatalf("oversized aux count not rejected: %v", err)
	}
}

func TestWriteFileAtomicBasics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.lscp")
	d1 := EncodeFile(mkFileCheckpoint(1))
	if err := WriteFileAtomic(path, d1, nil); err != nil {
		t.Fatal(err)
	}
	fc, fromBackup, err := LoadFile(path)
	if err != nil || fromBackup || fc.State.Cycle != 1 {
		t.Fatalf("load: %v fromBackup=%v", err, fromBackup)
	}
	// Second write keeps a one-deep backup of the first.
	d2 := EncodeFile(mkFileCheckpoint(2))
	if err := WriteFileAtomic(path, d2, nil); err != nil {
		t.Fatal(err)
	}
	bfc, err2 := DecodeFile(mustRead(t, BackupPath(path)))
	if err2 != nil || bfc.State.Cycle != 1 {
		t.Fatalf("backup: %v %+v", err2, bfc)
	}
	// No stray temp files survive.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Errorf("directory has %d entries, want file+backup", len(ents))
	}
}

// TestWriteFileAtomicCrash simulates a crash at each protocol stage and
// asserts a loadable checkpoint always survives.
func TestWriteFileAtomicCrash(t *testing.T) {
	for _, stage := range []string{"after-temp", "after-backup"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "cp.lscp")
			if err := WriteFileAtomic(path, EncodeFile(mkFileCheckpoint(1)), nil); err != nil {
				t.Fatal(err)
			}
			crash := errors.New("simulated crash")
			err := WriteFileAtomic(path, EncodeFile(mkFileCheckpoint(2)), func(s string) error {
				if s == stage {
					return crash
				}
				return nil
			})
			if !errors.Is(err, crash) {
				t.Fatalf("want simulated crash, got %v", err)
			}
			fc, _, lerr := LoadFile(path)
			if lerr != nil {
				t.Fatalf("no loadable checkpoint after crash at %s: %v", stage, lerr)
			}
			if fc.State.Cycle != 1 {
				t.Errorf("crash at %s: loaded cycle %d, want previous checkpoint", stage, fc.State.Cycle)
			}
		})
	}
}

// TestLoadFileBackupFallback: a torn/corrupt primary falls back to .bak.
func TestLoadFileBackupFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.lscp")
	if err := os.WriteFile(BackupPath(path), EncodeFile(mkFileCheckpoint(7)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("torn gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	fc, fromBackup, err := LoadFile(path)
	if err != nil || !fromBackup {
		t.Fatalf("backup fallback failed: %v fromBackup=%v", err, fromBackup)
	}
	if fc.State.Cycle != 7 {
		t.Errorf("cycle %d", fc.State.Cycle)
	}
	// With both gone/corrupt the primary's error is reported.
	os.Remove(BackupPath(path))
	if _, _, err := LoadFile(path); err == nil {
		t.Error("want error with no usable file")
	}
}

func TestStoreMarkDropSince(t *testing.T) {
	s := NewStore()
	for c := uint64(0); c < 50; c += 10 {
		s.Add(mkState(c), "v0", 0)
	}
	mark := s.Mark()
	s.Add(mkState(50), "v1", 1)
	s.Add(mkState(60), "v1", 1)
	if n := s.DropSince(mark); n != 2 {
		t.Fatalf("dropped %d", n)
	}
	if s.Len() != 5 {
		t.Errorf("len %d", s.Len())
	}
	for _, cp := range s.All() {
		if cp.Version != "v0" {
			t.Errorf("post-mark checkpoint survived: %+v", cp)
		}
	}
	// Idempotent when nothing is newer.
	if n := s.DropSince(mark); n != 0 {
		t.Errorf("second drop removed %d", n)
	}
}

func TestStoreDropAfterCycle(t *testing.T) {
	s := NewStore()
	for c := uint64(0); c <= 60; c += 10 {
		s.Add(mkState(c), "v0", 0)
	}
	if n := s.DropAfterCycle(25); n != 4 {
		t.Fatalf("dropped %d", n)
	}
	for _, cp := range s.All() {
		if cp.Cycle > 25 {
			t.Errorf("checkpoint beyond cycle survived: %+v", cp)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
