package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"livesim/internal/sim"
)

// On-disk checkpoint container (format version 1):
//
//	offset 0  : magic "LSCP"
//	offset 4  : format version (u32 LE)
//	offset 8  : CRC32 (IEEE) of the payload (u32 LE)
//	offset 12 : payload length (u64 LE)
//	offset 20 : payload
//
// and the payload is:
//
//	design version string | history position (u64) |
//	aux count (u64) | { handle string | blob } ... (handles sorted) |
//	state blob length (u64) | encodeState blob
//
// where strings and blobs are length-prefixed (u64 LE). Files written by
// older releases are raw encodeState output with no header; DecodeFile
// accepts them through a legacy path that cannot carry the design
// version, history position or testbench snapshots.

// FileMagic identifies a versioned checkpoint file.
const FileMagic = "LSCP"

// FileFormatVersion is the current container version.
const FileFormatVersion = 1

const fileHeaderLen = 4 + 4 + 4 + 8

// FileCheckpoint is the decoded content of a checkpoint file.
type FileCheckpoint struct {
	// FormatVersion is the container version (0 for legacy headerless
	// files, which carry only the state).
	FormatVersion uint32
	// Version is the design version the state was captured under ("" in
	// legacy files).
	Version string
	// HistoryPos is the session-history position at capture (-1 when the
	// file predates the versioned format and does not carry it).
	HistoryPos int
	// State is the simulation state.
	State *sim.State
	// Aux carries the testbench snapshots captured with the state (nil in
	// legacy files).
	Aux map[string][]byte
}

// EncodeFile serializes a checkpoint into the versioned container. It
// blocks until the background state serialization has finished.
func EncodeFile(cp *Checkpoint) []byte {
	state := cp.Bytes()
	handles := make([]string, 0, len(cp.Aux))
	payloadLen := 8 + len(cp.Version) + 8 + 8
	for h := range cp.Aux {
		handles = append(handles, h)
		payloadLen += 8 + len(h) + 8 + len(cp.Aux[h])
	}
	sort.Strings(handles)
	payloadLen += 8 + len(state)

	buf := make([]byte, 0, fileHeaderLen+payloadLen)
	buf = append(buf, FileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, FileFormatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payloadLen))

	put := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	putBytes := func(b []byte) {
		put(uint64(len(b)))
		buf = append(buf, b...)
	}
	putBytes([]byte(cp.Version))
	put(uint64(cp.HistoryPos))
	put(uint64(len(handles)))
	for _, h := range handles {
		putBytes([]byte(h))
		putBytes(cp.Aux[h])
	}
	putBytes(state)

	crc := crc32.ChecksumIEEE(buf[fileHeaderLen:])
	binary.LittleEndian.PutUint32(buf[8:], crc)
	return buf
}

// DecodeFile parses a checkpoint file: the versioned container when the
// magic is present (rejecting unknown future versions and CRC
// mismatches), or the legacy headerless state blob otherwise.
func DecodeFile(data []byte) (*FileCheckpoint, error) {
	if len(data) < 4 || string(data[:4]) != FileMagic {
		// Legacy path: a raw state blob from before the versioned format.
		st, err := DecodeState(data)
		if err != nil {
			return nil, fmt.Errorf("not a checkpoint file (no %s header, and not a legacy state blob): %w", FileMagic, err)
		}
		return &FileCheckpoint{FormatVersion: 0, HistoryPos: -1, State: st}, nil
	}
	if len(data) < fileHeaderLen {
		return nil, fmt.Errorf("checkpoint file truncated: %d bytes < %d-byte header", len(data), fileHeaderLen)
	}
	ver := binary.LittleEndian.Uint32(data[4:])
	if ver == 0 || ver > FileFormatVersion {
		return nil, fmt.Errorf("checkpoint file format version %d not supported (this build reads 1..%d)", ver, FileFormatVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:])
	plen := binary.LittleEndian.Uint64(data[12:])
	if plen != uint64(len(data)-fileHeaderLen) {
		return nil, fmt.Errorf("checkpoint file corrupt: payload length %d, file carries %d", plen, len(data)-fileHeaderLen)
	}
	payload := data[fileHeaderLen:]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("checkpoint file corrupt: CRC mismatch (file %#x, computed %#x)", wantCRC, got)
	}

	off := 0
	get := func() (uint64, error) {
		if off+8 > len(payload) {
			return 0, fmt.Errorf("checkpoint payload truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := get()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(payload)-off) {
			return nil, fmt.Errorf("checkpoint payload corrupt: %d-byte field at offset %d exceeds payload", n, off)
		}
		b := payload[off : off+int(n)]
		off += int(n)
		return b, nil
	}

	fc := &FileCheckpoint{FormatVersion: ver}
	verStr, err := getBytes()
	if err != nil {
		return nil, err
	}
	fc.Version = string(verStr)
	hpos, err := get()
	if err != nil {
		return nil, err
	}
	fc.HistoryPos = int(hpos)
	nAux, err := get()
	if err != nil {
		return nil, err
	}
	// Each aux entry needs at least two length prefixes.
	if nAux > uint64(len(payload)-off)/16 {
		return nil, fmt.Errorf("checkpoint payload corrupt: %d aux entries in %d bytes", nAux, len(payload)-off)
	}
	if nAux > 0 {
		fc.Aux = make(map[string][]byte, nAux)
	}
	for i := uint64(0); i < nAux; i++ {
		h, err := getBytes()
		if err != nil {
			return nil, err
		}
		blob, err := getBytes()
		if err != nil {
			return nil, err
		}
		fc.Aux[string(h)] = append([]byte(nil), blob...)
	}
	stateBlob, err := getBytes()
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(stateBlob)
	if err != nil {
		return nil, err
	}
	fc.State = st
	return fc, nil
}

// BackupPath returns the path of the one-deep backup kept beside a
// checkpoint file.
func BackupPath(path string) string { return path + ".bak" }

// WriteFileAtomic writes data to path so that a crash at any point leaves
// either the previous file, the previous file under BackupPath(path), or
// the complete new file — never a torn mix. The protocol is: write and
// fsync a temp file in the same directory, move any existing file to the
// .bak slot, rename the temp into place, and fsync the directory. hook,
// when non-nil, is consulted between stages ("after-temp", "after-backup")
// so fault-injection tests can simulate a crash mid-protocol; a hook
// error aborts the write at that point exactly as a crash would.
func WriteFileAtomic(path string, data []byte, hook func(stage string) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if hook != nil {
		if err := hook("after-temp"); err != nil {
			return err
		}
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, BackupPath(path)); err != nil {
			os.Remove(tmpName)
			return err
		}
	}
	if hook != nil {
		if err := hook("after-backup"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Best effort: persist the renames. A failure here only weakens
	// durability against power loss, not atomicity.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads and decodes a checkpoint file. When the primary file is
// missing or corrupt and a .bak sibling decodes cleanly, the backup is
// returned with fromBackup=true; otherwise the primary error is returned.
func LoadFile(path string) (fc *FileCheckpoint, fromBackup bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr == nil {
		if fc, derr := DecodeFile(data); derr == nil {
			return fc, false, nil
		} else {
			rerr = derr
		}
	}
	bdata, berr := os.ReadFile(BackupPath(path))
	if berr == nil {
		if fc, derr := DecodeFile(bdata); derr == nil {
			return fc, true, nil
		}
	}
	return nil, false, fmt.Errorf("checkpoint %s unreadable (no usable backup): %w", path, rerr)
}
