package checkpoint

import (
	"reflect"
	"testing"
	"testing/quick"

	"livesim/internal/sim"
)

func mkState(cycle uint64) *sim.State {
	return &sim.State{
		Cycle: cycle,
		Nodes: []sim.NodeState{
			{Path: "top", ObjKey: "m", Slots: []uint64{cycle, cycle * 2}, Mems: [][]uint64{{1, 2, 3}}},
			{Path: "top.u0", ObjKey: "leaf", Slots: []uint64{cycle + 7}},
		},
	}
}

func TestAddAndSelect(t *testing.T) {
	s := NewStore()
	for c := uint64(0); c <= 100_000; c += 10_000 {
		s.Add(mkState(c), "v1", int(c/10_000))
	}
	s.Wait()
	if s.Len() != 11 {
		t.Fatalf("len %d", s.Len())
	}
	// Target 95_000 with 10k lookback: want newest cp <= 85_000.
	cp := s.Select(95_000, 10_000)
	if cp == nil || cp.Cycle != 80_000 {
		t.Fatalf("selected %+v", cp)
	}
	// Exact boundary: target 90_000, goal 80_000 -> cp at 80_000.
	cp = s.Select(90_000, 10_000)
	if cp == nil || cp.Cycle != 80_000 {
		t.Fatalf("selected %+v", cp)
	}
	// Target smaller than lookback: earliest checkpoint (cycle 0).
	cp = s.Select(5_000, 10_000)
	if cp == nil || cp.Cycle != 0 {
		t.Fatalf("selected %+v", cp)
	}
}

func TestSelectEmpty(t *testing.T) {
	s := NewStore()
	if cp := s.Select(100, 10); cp != nil {
		t.Fatalf("want nil, got %+v", cp)
	}
}

func TestEncodedRoundTrip(t *testing.T) {
	s := NewStore()
	cp := s.Add(mkState(42), "v1", 3)
	got, err := DecodeState(cp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp.State) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, cp.State)
	}
}

func TestDecodeErrors(t *testing.T) {
	s := NewStore()
	cp := s.Add(mkState(1), "v1", 0)
	enc := cp.Bytes()
	for _, cut := range []int{0, 1, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeState(enc[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestGCKeepsLatestAndThins(t *testing.T) {
	s := NewStore()
	s.KeepLatest = 10
	s.MaxTotal = 20
	for c := uint64(0); c < 100; c++ {
		s.Add(mkState(c*1000), "v1", int(c))
	}
	s.Wait()
	if s.Len() != 20 {
		t.Fatalf("len %d want 20", s.Len())
	}
	all := s.All()
	// The 10 newest must be intact (cycles 90k..99k).
	newest := all[len(all)-10:]
	for i, cp := range newest {
		want := uint64(90+i) * 1000
		if cp.Cycle != want {
			t.Errorf("newest[%d] cycle %d want %d", i, cp.Cycle, want)
		}
	}
	// The oldest anchor must survive.
	if all[0].Cycle != 0 {
		t.Errorf("oldest %d want 0", all[0].Cycle)
	}
	// The 10 older survivors should be roughly evenly spread over 0..89k:
	// max gap should not exceed ~3x the ideal spacing.
	older := all[:len(all)-10]
	ideal := uint64(89_000) / uint64(len(older))
	for i := 1; i < len(older); i++ {
		gap := older[i].Cycle - older[i-1].Cycle
		if gap > 3*ideal+1000 {
			t.Errorf("gap %d too large (ideal %d): %v", gap, ideal, cycles(older))
		}
	}
	if s.Deleted != 80 {
		t.Errorf("deleted %d", s.Deleted)
	}
}

func cycles(cps []*Checkpoint) []uint64 {
	out := make([]uint64, len(cps))
	for i, cp := range cps {
		out[i] = cp.Cycle
	}
	return out
}

func TestBefore(t *testing.T) {
	s := NewStore()
	for _, c := range []uint64{500, 100, 300, 900} {
		s.Add(mkState(c), "v1", 0)
	}
	got := cycles(s.Before(600))
	want := []uint64{100, 300, 500}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestVersionOps(t *testing.T) {
	s := NewStore()
	s.Add(mkState(1), "v1", 0)
	s.Add(mkState(2), "v1", 0)
	s.Add(mkState(3), "v2", 0)
	if n := s.RelabelVersion("v1", "v3"); n != 2 {
		t.Errorf("relabel %d", n)
	}
	if n := s.DropOtherVersions("v3"); n != 1 {
		t.Errorf("dropped %d", n)
	}
	if s.Len() != 2 {
		t.Errorf("len %d", s.Len())
	}
}

func TestIDsMonotonic(t *testing.T) {
	s := NewStore()
	a := s.Add(mkState(1), "v1", 0)
	b := s.Add(mkState(2), "v1", 1)
	if b.ID != a.ID+1 {
		t.Errorf("ids %d %d", a.ID, b.ID)
	}
	if a.HistoryPos != 0 || b.HistoryPos != 1 {
		t.Errorf("history pos %d %d", a.HistoryPos, b.HistoryPos)
	}
}

// Property: encode/decode round-trips arbitrary small states.
func TestRoundTripProperty(t *testing.T) {
	f := func(cycle uint64, slots []uint64, mem []uint64, finished bool) bool {
		if len(slots) > 64 {
			slots = slots[:64]
		}
		if len(mem) > 64 {
			mem = mem[:64]
		}
		st := &sim.State{
			Cycle:    cycle,
			Finished: finished,
			Nodes: []sim.NodeState{
				{Path: "top", ObjKey: "k", Slots: slots, Mems: [][]uint64{mem}},
			},
		}
		got, err := DecodeState(encodeState(st))
		if err != nil {
			return false
		}
		if got.Cycle != cycle || got.Finished != finished || len(got.Nodes) != 1 {
			return false
		}
		n := got.Nodes[0]
		if len(n.Slots) != len(slots) || len(n.Mems[0]) != len(mem) {
			return false
		}
		for i := range slots {
			if n.Slots[i] != slots[i] {
				return false
			}
		}
		for i := range mem {
			if n.Mems[0][i] != mem[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
