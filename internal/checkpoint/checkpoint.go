// Package checkpoint implements LiveSim's checkpointing subsystem
// (Sections III-B, III-D and Figure 2 of the paper):
//
//   - checkpoints are taken at regular cycle intervals during execution;
//   - creation is kept off the simulation's critical path: the hot path
//     only performs a stop-the-world state copy (the paper's fork), while
//     serialization happens on a background goroutine (the paper's child
//     process that "creates the checkpoint and halts");
//   - reloading picks the checkpoint closest to 10k cycles before the
//     point of interest (Section III-D, the distance is tunable);
//   - garbage collection keeps the latest 100 checkpoints and thins older
//     ones to roughly equal spacing (Figure 2(c)).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"livesim/internal/obs"
	"livesim/internal/sim"
)

// Checkpoint is one saved simulation state.
type Checkpoint struct {
	ID      int
	Cycle   uint64
	Version string // design version (register-transform history node)
	// HistoryPos is the session-history position (number of run operations
	// applied when the checkpoint was taken).
	HistoryPos int
	// State is the raw captured state (the "forked" copy).
	State *sim.State
	// Aux carries opaque side state captured with the checkpoint — the
	// session stores testbench snapshots here so a reload resumes the
	// whole operation history, not just the RTL state.
	Aux map[string][]byte

	// encoded is the serialized form, produced asynchronously.
	encoded []byte
	ready   chan struct{}
}

// Bytes returns the serialized checkpoint, blocking until the background
// writer has finished.
func (c *Checkpoint) Bytes() []byte {
	<-c.ready
	return c.encoded
}

// Store holds a session's checkpoints and applies the GC policy.
type Store struct {
	mu sync.Mutex

	// KeepLatest is how many of the newest checkpoints are immune to
	// thinning (the paper keeps the 100 latest).
	KeepLatest int
	// MaxTotal caps the total number of live checkpoints; older ones are
	// thinned toward equal spacing when the cap is exceeded.
	MaxTotal int

	cps    []*Checkpoint
	nextID int
	wg     sync.WaitGroup

	// Deleted counts checkpoints removed by GC (observability).
	Deleted int

	// metrics, when set, receives checkpoint_* counters and encode
	// latency (all on the background writer, never the hot path).
	// The per-take instruments are resolved once in SetMetrics so Add
	// never pays a registry lookup; all are nil-safe no-ops when unset.
	metrics       *obs.Registry
	cTakes        *obs.Counter
	cEncodedBytes *obs.Counter
	hEncode       *obs.Histogram
}

// NewStore returns a store with the paper's defaults.
func NewStore() *Store {
	return &Store{KeepLatest: 100, MaxTotal: 400}
}

// SetMetrics points the store at a metrics registry (nil = off):
// checkpoint_takes, checkpoint_encoded_bytes, checkpoint_gc_deleted and
// the checkpoint_encode_seconds histogram.
func (s *Store) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	s.metrics = reg
	s.cTakes = reg.Counter("checkpoint_takes")
	s.cEncodedBytes = reg.Counter("checkpoint_encoded_bytes")
	s.hEncode = reg.Histogram("checkpoint_encode_seconds", nil)
	s.mu.Unlock()
}

// Add captures st as a new checkpoint. The call does only cheap work; the
// serialization runs on a background goroutine. The returned checkpoint is
// immediately usable for Restore (its State is live).
func (s *Store) Add(st *sim.State, version string, historyPos int) *Checkpoint {
	s.mu.Lock()
	cp := &Checkpoint{
		ID:         s.nextID,
		Cycle:      st.Cycle,
		Version:    version,
		HistoryPos: historyPos,
		State:      st,
		ready:      make(chan struct{}),
	}
	s.nextID++
	s.cps = append(s.cps, cp)
	s.gcLocked()
	cTakes, cBytes, hEncode := s.cTakes, s.cEncodedBytes, s.hEncode
	s.mu.Unlock()

	cTakes.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t0 := time.Now()
		cp.encoded = encodeState(st)
		close(cp.ready)
		hEncode.Observe(time.Since(t0).Seconds())
		cBytes.Add(uint64(len(cp.encoded)))
	}()
	return cp
}

// Wait blocks until all background serializations have finished.
func (s *Store) Wait() { s.wg.Wait() }

// ApproxBytes estimates the store's in-memory footprint: every live
// checkpoint's state copy plus its encoded blob (when the background
// serialization has landed — the estimate never blocks on it) plus Aux
// side state. Feeds the governance plane's per-session memory gauges;
// an estimate that lags one encode is fine for ranking and alarming.
func (s *Store) ApproxBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, cp := range s.cps {
		if cp.State != nil {
			n += uint64(cp.State.Bytes())
		}
		select {
		case <-cp.ready:
			n += uint64(len(cp.encoded))
		default:
		}
		for _, aux := range cp.Aux {
			n += uint64(len(aux))
		}
	}
	return n
}

// Len returns the number of live checkpoints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cps)
}

// All returns the live checkpoints ordered by cycle.
func (s *Store) All() []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Checkpoint, len(s.cps))
	copy(out, s.cps)
	return out
}

// Select returns the checkpoint best suited for re-running to reach
// target: the newest checkpoint at or before target-lookback. When none
// is old enough, the oldest checkpoint at or before target is returned;
// nil means the simulation must restart from cycle 0.
//
// lookback is the paper's "closest to 10K cycles before the stopping
// point" parameter.
func (s *Store) Select(target, lookback uint64) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	goal := uint64(0)
	if target > lookback {
		goal = target - lookback
	}
	var best *Checkpoint
	for _, cp := range s.cps {
		if cp.Cycle > target {
			continue
		}
		if cp.Cycle <= goal {
			if best == nil || cp.Cycle > best.Cycle {
				best = cp
			}
		}
	}
	if best != nil {
		return best
	}
	// Nothing old enough: take the earliest usable one.
	for _, cp := range s.cps {
		if cp.Cycle <= target && (best == nil || cp.Cycle < best.Cycle) {
			best = cp
		}
	}
	return best
}

// Before returns the checkpoints with Cycle <= target, ordered by cycle —
// the candidates for parallel consistency verification (Figure 6).
func (s *Store) Before(target uint64) []*Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Checkpoint
	for _, cp := range s.cps {
		if cp.Cycle <= target {
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

// DropVersion removes checkpoints whose design version is not v — used
// when the consistency verifier proves old-version checkpoints invalid.
func (s *Store) DropOtherVersions(v string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.cps[:0]
	dropped := 0
	for _, cp := range s.cps {
		if cp.Version == v {
			kept = append(kept, cp)
		} else {
			dropped++
		}
	}
	s.cps = kept
	s.Deleted += dropped
	s.metrics.Counter("checkpoint_gc_deleted").Add(uint64(dropped))
	return dropped
}

// DropVersionAfter removes checkpoints of the given version at or beyond
// cycle — the cleanup after the consistency verifier finds a divergence
// point: everything past it describes states the new code cannot reach.
func (s *Store) DropVersionAfter(version string, cycle uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.cps[:0]
	dropped := 0
	for _, cp := range s.cps {
		if cp.Version == version && cp.Cycle >= cycle {
			dropped++
			continue
		}
		kept = append(kept, cp)
	}
	s.cps = kept
	s.Deleted += dropped
	s.metrics.Counter("checkpoint_gc_deleted").Add(uint64(dropped))
	return dropped
}

// Mark returns a watermark: the ID the next added checkpoint will get.
// Pass it to DropSince to undo everything added after this point.
func (s *Store) Mark() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// DropSince removes every checkpoint whose ID is at or beyond the given
// Mark watermark — the transactional-rollback cleanup: checkpoints taken
// while re-executing under a change that later failed describe states the
// restored session never reached.
func (s *Store) DropSince(mark int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.cps[:0]
	dropped := 0
	for _, cp := range s.cps {
		if cp.ID >= mark {
			dropped++
			continue
		}
		kept = append(kept, cp)
	}
	s.cps = kept
	s.Deleted += dropped
	s.metrics.Counter("checkpoint_gc_deleted").Add(uint64(dropped))
	return dropped
}

// DropAfterCycle removes checkpoints beyond the given cycle — the cleanup
// after restoring an external checkpoint file: later checkpoints describe
// a future the restored session may never revisit.
func (s *Store) DropAfterCycle(cycle uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.cps[:0]
	dropped := 0
	for _, cp := range s.cps {
		if cp.Cycle > cycle {
			dropped++
			continue
		}
		kept = append(kept, cp)
	}
	s.cps = kept
	s.Deleted += dropped
	s.metrics.Counter("checkpoint_gc_deleted").Add(uint64(dropped))
	return dropped
}

// RelabelVersion rewrites the version tag on checkpoints — used after the
// verifier proves old-version checkpoints remain consistent under the new
// code, making them loadable as new-version checkpoints.
func (s *Store) RelabelVersion(from, to string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, cp := range s.cps {
		if cp.Version == from {
			cp.Version = to
			n++
		}
	}
	return n
}

// gcLocked applies the Figure 2(c) policy: the newest KeepLatest
// checkpoints always survive; if the total still exceeds MaxTotal, older
// checkpoints are thinned by repeatedly deleting the one whose removal
// leaves the most even spacing (approximated by deleting the checkpoint
// with the smallest gap to its predecessor).
func (s *Store) gcLocked() {
	if s.MaxTotal <= 0 || len(s.cps) <= s.MaxTotal {
		return
	}
	sort.Slice(s.cps, func(i, j int) bool { return s.cps[i].Cycle < s.cps[j].Cycle })
	for len(s.cps) > s.MaxTotal {
		limit := len(s.cps) - s.KeepLatest // only indexes < limit are candidates
		if limit <= 1 {
			break
		}
		// Find the candidate (never the very first checkpoint: keeping the
		// oldest anchor preserves the ability to replay from far back)
		// whose predecessor gap is smallest.
		bestIdx, bestGap := -1, uint64(0)
		for i := 1; i < limit; i++ {
			gap := s.cps[i].Cycle - s.cps[i-1].Cycle
			if bestIdx < 0 || gap < bestGap {
				bestIdx, bestGap = i, gap
			}
		}
		if bestIdx < 0 {
			break
		}
		s.cps = append(s.cps[:bestIdx], s.cps[bestIdx+1:]...)
		s.Deleted++
		s.metrics.Counter("checkpoint_gc_deleted").Inc()
	}
}

// encodeState serializes a state deterministically. This is the work the
// paper's forked child performs off the critical path.
func encodeState(st *sim.State) []byte {
	size := 16
	for i := range st.Nodes {
		n := &st.Nodes[i]
		size += 8 + len(n.Path) + len(n.ObjKey) + 8 + 8*len(n.Slots) + 8
		for _, m := range n.Mems {
			size += 8 + 8*len(m)
		}
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	putStr := func(s string) {
		put(uint64(len(s)))
		buf = append(buf, s...)
	}
	put(st.Cycle)
	if st.Finished {
		put(1)
	} else {
		put(0)
	}
	put(uint64(len(st.Nodes)))
	for i := range st.Nodes {
		n := &st.Nodes[i]
		putStr(n.Path)
		putStr(n.ObjKey)
		put(uint64(len(n.Slots)))
		for _, v := range n.Slots {
			put(v)
		}
		put(uint64(len(n.Mems)))
		for _, m := range n.Mems {
			put(uint64(len(m)))
			for _, v := range m {
				put(v)
			}
		}
	}
	return buf
}

// DecodeState parses the serialized form produced by the background
// writer.
func DecodeState(buf []byte) (*sim.State, error) {
	off := 0
	need := func(n int) error {
		if off+n > len(buf) {
			return fmt.Errorf("checkpoint truncated at offset %d", off)
		}
		return nil
	}
	get := func() (uint64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get()
		if err != nil {
			return "", err
		}
		// Hard bound against the buffer, not int(n): a corrupt 64-bit
		// length must not overflow int or drive a huge allocation.
		if n > uint64(len(buf)-off) {
			return "", fmt.Errorf("checkpoint corrupt: %d-byte string at offset %d exceeds buffer", n, off)
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, nil
	}

	st := &sim.State{}
	cyc, err := get()
	if err != nil {
		return nil, err
	}
	st.Cycle = cyc
	fin, err := get()
	if err != nil {
		return nil, err
	}
	st.Finished = fin != 0
	nNodes, err := get()
	if err != nil {
		return nil, err
	}
	// Every node costs at least four 8-byte length fields, so a count
	// beyond remaining/32 cannot be satisfied by the buffer — reject it
	// before allocating.
	if nNodes > uint64(len(buf)-off)/32 {
		return nil, fmt.Errorf("checkpoint corrupt: %d nodes in %d remaining bytes", nNodes, len(buf)-off)
	}
	st.Nodes = make([]sim.NodeState, nNodes)
	for i := range st.Nodes {
		n := &st.Nodes[i]
		if n.Path, err = getStr(); err != nil {
			return nil, err
		}
		if n.ObjKey, err = getStr(); err != nil {
			return nil, err
		}
		nSlots, err := get()
		if err != nil {
			return nil, err
		}
		if nSlots > uint64(len(buf)-off)/8 {
			return nil, fmt.Errorf("checkpoint corrupt: %d slots in %d remaining bytes", nSlots, len(buf)-off)
		}
		if nSlots > 0 {
			n.Slots = make([]uint64, nSlots)
			for j := range n.Slots {
				n.Slots[j] = binary.LittleEndian.Uint64(buf[off:])
				off += 8
			}
		}
		nMems, err := get()
		if err != nil {
			return nil, err
		}
		// Each memory costs at least its 8-byte depth field.
		if nMems > uint64(len(buf)-off)/8 {
			return nil, fmt.Errorf("checkpoint corrupt: %d memories in %d remaining bytes", nMems, len(buf)-off)
		}
		if nMems > 0 {
			n.Mems = make([][]uint64, nMems)
		}
		for mi := 0; mi < int(nMems); mi++ {
			depth, err := get()
			if err != nil {
				return nil, err
			}
			if depth > uint64(len(buf)-off)/8 {
				return nil, fmt.Errorf("checkpoint corrupt: memory depth %d in %d remaining bytes", depth, len(buf)-off)
			}
			m := make([]uint64, depth)
			for j := range m {
				m[j] = binary.LittleEndian.Uint64(buf[off:])
				off += 8
			}
			n.Mems[mi] = m
		}
	}
	return st, nil
}
