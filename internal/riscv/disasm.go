package riscv

import "fmt"

// Disassemble renders one instruction word at the given address.
func Disassemble(insn uint32, addr uint64) string {
	r := func(i uint32) string { return RegNames[i&31] }
	switch insn & 0x7F {
	case opLUI:
		return fmt.Sprintf("lui %s, %#x", r(rd(insn)), uint64(immU(insn))>>12&0xFFFFF)
	case opAUIPC:
		return fmt.Sprintf("auipc %s, %#x", r(rd(insn)), uint64(immU(insn))>>12&0xFFFFF)
	case opJAL:
		return fmt.Sprintf("jal %s, %#x", r(rd(insn)), addr+uint64(immJ(insn)))
	case opJALR:
		return fmt.Sprintf("jalr %s, %d(%s)", r(rd(insn)), immI(insn), r(rs1(insn)))
	case opBranch:
		mn := map[uint32]string{0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}[funct3(insn)]
		if mn == "" {
			return fmt.Sprintf(".word %#08x", insn)
		}
		return fmt.Sprintf("%s %s, %s, %#x", mn, r(rs1(insn)), r(rs2(insn)), addr+uint64(immB(insn)))
	case opLoad:
		mn := map[uint32]string{0: "lb", 1: "lh", 2: "lw", 3: "ld", 4: "lbu", 5: "lhu", 6: "lwu"}[funct3(insn)]
		if mn == "" {
			return fmt.Sprintf(".word %#08x", insn)
		}
		return fmt.Sprintf("%s %s, %d(%s)", mn, r(rd(insn)), immI(insn), r(rs1(insn)))
	case opStore:
		mn := map[uint32]string{0: "sb", 1: "sh", 2: "sw", 3: "sd"}[funct3(insn)]
		if mn == "" {
			return fmt.Sprintf(".word %#08x", insn)
		}
		return fmt.Sprintf("%s %s, %d(%s)", mn, r(rs2(insn)), immS(insn), r(rs1(insn)))
	case opImm:
		switch funct3(insn) {
		case 0b001:
			return fmt.Sprintf("slli %s, %s, %d", r(rd(insn)), r(rs1(insn)), (insn>>20)&63)
		case 0b101:
			mn := "srli"
			if insn>>30&1 == 1 {
				mn = "srai"
			}
			return fmt.Sprintf("%s %s, %s, %d", mn, r(rd(insn)), r(rs1(insn)), (insn>>20)&63)
		}
		mn := map[uint32]string{0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}[funct3(insn)]
		return fmt.Sprintf("%s %s, %s, %d", mn, r(rd(insn)), r(rs1(insn)), immI(insn))
	case opImm32:
		switch funct3(insn) {
		case 0b000:
			return fmt.Sprintf("addiw %s, %s, %d", r(rd(insn)), r(rs1(insn)), immI(insn))
		case 0b001:
			return fmt.Sprintf("slliw %s, %s, %d", r(rd(insn)), r(rs1(insn)), (insn>>20)&31)
		case 0b101:
			mn := "srliw"
			if insn>>30&1 == 1 {
				mn = "sraiw"
			}
			return fmt.Sprintf("%s %s, %s, %d", mn, r(rd(insn)), r(rs1(insn)), (insn>>20)&31)
		}
		return fmt.Sprintf(".word %#08x", insn)
	case opReg, opReg32:
		suffix := ""
		if insn&0x7F == opReg32 {
			suffix = "w"
		}
		key := funct3(insn)<<8 | funct7(insn)
		mn := map[uint32]string{
			0b000<<8 | 0x00: "add", 0b000<<8 | 0x20: "sub",
			0b001<<8 | 0x00: "sll", 0b010<<8 | 0x00: "slt", 0b011<<8 | 0x00: "sltu",
			0b100<<8 | 0x00: "xor", 0b101<<8 | 0x00: "srl", 0b101<<8 | 0x20: "sra",
			0b110<<8 | 0x00: "or", 0b111<<8 | 0x00: "and",
		}[key]
		if mn == "" {
			return fmt.Sprintf(".word %#08x", insn)
		}
		return fmt.Sprintf("%s%s %s, %s, %s", mn, suffix, r(rd(insn)), r(rs1(insn)), r(rs2(insn)))
	case opSystem:
		if immI(insn) == 1 {
			return "ebreak"
		}
		return "ecall"
	case opFence:
		return "fence"
	}
	return fmt.Sprintf(".word %#08x", insn)
}
