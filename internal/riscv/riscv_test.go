package riscv

import (
	"strings"
	"testing"
	"testing/quick"
)

func asm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runProg(t *testing.T, src string, maxSteps int) *CPU {
	t.Helper()
	p := asm(t, src)
	mem := make(SliceMemory, 32*1024)
	copy(mem, p.Bytes())
	c := NewCPU(mem)
	if err := c.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatalf("program did not halt in %d steps (pc=%#x)", maxSteps, c.PC)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := runProg(t, `
  li a0, 40
  li a1, 2
  add a2, a0, a1     # 42
  sub a3, a0, a1     # 38
  slli a4, a1, 4     # 32
  xor a5, a0, a1     # 42
  ecall
`, 100)
	if c.Regs[12] != 42 || c.Regs[13] != 38 || c.Regs[14] != 32 || c.Regs[15] != 42 {
		t.Errorf("regs %v", c.Regs[10:16])
	}
}

func TestLiWide(t *testing.T) {
	c := runProg(t, `
  li a0, 0x12345678
  li a1, -1
  li a2, 0x7FFFFFFF
  li a3, -2048
  ecall
`, 100)
	if c.Regs[10] != 0x12345678 {
		t.Errorf("a0 %#x", c.Regs[10])
	}
	if c.Regs[11] != ^uint64(0) {
		t.Errorf("a1 %#x", c.Regs[11])
	}
	if c.Regs[12] != 0x7FFFFFFF {
		t.Errorf("a2 %#x", c.Regs[12])
	}
	if int64(c.Regs[13]) != -2048 {
		t.Errorf("a3 %#x", c.Regs[13])
	}
}

func TestFibonacciLoop(t *testing.T) {
	c := runProg(t, `
  li a0, 0        # fib(0)
  li a1, 1        # fib(1)
  li t0, 20       # count
loop:
  beqz t0, done
  add t1, a0, a1
  mv a0, a1
  mv a1, t1
  addi t0, t0, -1
  j loop
done:
  ecall
`, 1000)
	if c.Regs[10] != 6765 { // fib(20)
		t.Errorf("fib(20) = %d", c.Regs[10])
	}
}

func TestLoadsStores(t *testing.T) {
	c := runProg(t, `
  li a0, 0x1000
  li a1, -1
  sd a1, 0(a0)
  li a2, 0x55
  sb a2, 3(a0)
  ld a3, 0(a0)        # ff ff ff 55 ff ff ff ff (LE byte 3)
  lw a4, 0(a0)        # 0x55ffffff sign-extended
  lbu a5, 3(a0)       # 0x55
  lb a6, 4(a0)        # -1
  lhu a7, 2(a0)       # 0x55ff
  ecall
`, 100)
	if c.Regs[13] != 0xFFFFFFFF55FFFFFF {
		t.Errorf("ld %#x", c.Regs[13])
	}
	if c.Regs[14] != uint64(int64(int32(0x55FFFFFF))) {
		t.Errorf("lw %#x", c.Regs[14])
	}
	if c.Regs[15] != 0x55 {
		t.Errorf("lbu %#x", c.Regs[15])
	}
	if int64(c.Regs[16]) != -1 {
		t.Errorf("lb %#x", c.Regs[16])
	}
	if c.Regs[17] != 0x55FF {
		t.Errorf("lhu %#x", c.Regs[17])
	}
}

func TestBranchesAndCompares(t *testing.T) {
	c := runProg(t, `
  li a0, -5
  li a1, 3
  slt a2, a0, a1      # 1 (signed)
  sltu a3, a0, a1     # 0 (unsigned: big)
  blt a0, a1, taken
  li a4, 111
taken:
  bgeu a0, a1, taken2
  li a5, 222
taken2:
  li a6, 1
  ecall
`, 100)
	if c.Regs[12] != 1 || c.Regs[13] != 0 {
		t.Errorf("slt/sltu %d %d", c.Regs[12], c.Regs[13])
	}
	if c.Regs[14] != 0 { // skipped by branch
		t.Errorf("a4 %d", c.Regs[14])
	}
	if c.Regs[15] != 0 { // skipped by bgeu (unsigned -5 >= 3)
		t.Errorf("a5 %d", c.Regs[15])
	}
	if c.Regs[16] != 1 {
		t.Errorf("a6 %d", c.Regs[16])
	}
}

func TestCallRet(t *testing.T) {
	c := runProg(t, `
  li a0, 5
  call double
  call double
  ecall
double:
  add a0, a0, a0
  ret
`, 100)
	if c.Regs[10] != 20 {
		t.Errorf("a0 %d", c.Regs[10])
	}
}

func TestWordOps(t *testing.T) {
	c := runProg(t, `
  li a0, 0x7FFFFFFF
  addiw a1, a0, 1      # overflow to -2^31
  li a2, 1
  sllw a3, a2, a0      # shift by 31 (mod 32)
  li a4, -8
  sraiw a5, a4, 1      # -4
  ecall
`, 100)
	if int64(c.Regs[11]) != -2147483648 {
		t.Errorf("addiw %#x", c.Regs[11])
	}
	if c.Regs[13] != 0xFFFFFFFF80000000 {
		t.Errorf("sllw %#x", c.Regs[13])
	}
	if int64(c.Regs[15]) != -4 {
		t.Errorf("sraiw %#x", c.Regs[15])
	}
}

func TestDataDirectives(t *testing.T) {
	p := asm(t, `
  j start
data:
  .word 0x11223344, 0x55667788
  .dword 0xAABBCCDDEEFF0011
  .zero 8
start:
  la a0, data
  lw a1, 0(a0)
  ld a2, 8(a0)
  ecall
`)
	mem := make(SliceMemory, 32*1024)
	copy(mem, p.Bytes())
	c := NewCPU(mem)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[11] != 0x11223344 {
		t.Errorf("a1 %#x", c.Regs[11])
	}
	if c.Regs[12] != 0xAABBCCDDEEFF0011 {
		t.Errorf("a2 %#x", c.Regs[12])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	c := runProg(t, `
  addi x0, x0, 5
  li a0, 7
  add a0, a0, x0
  ecall
`, 10)
	if c.Regs[0] != 0 || c.Regs[10] != 7 {
		t.Errorf("x0 %d a0 %d", c.Regs[0], c.Regs[10])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"addi a0, a1",       // missing arg
		"addi a0, a1, 5000", // imm out of range
		"lw a0, a1",         // bad mem operand
		"beq a0, a1, nowhere",
		"dup: nop\ndup: nop",
		"li a0, 0x1_0000_0000_0", // > 32 bits
		"slli a0, a1, 64",
		"addi a0, qq, 0",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q: want error", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"add a0, a1, a2", "sub s0, s1, s2", "sllw t0, t1, t2",
		"addi a0, a1, -5", "slli a0, a1, 33", "sraiw a0, a1, 3",
		"lw a0, 8(sp)", "sd ra, -16(s0)", "lbu t0, 0(a0)",
		"beq a0, a1, 0", "bltu t0, t1, 0",
		"lui a0, 0x12345", "auipc t0, 0x1",
		"jal ra, 0", "jalr a0, 4(a1)",
		"ecall", "fence",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		dis := Disassemble(p.Words[0], 0)
		mnIn := strings.Fields(src)[0]
		mnOut := strings.Fields(dis)[0]
		if mnIn != mnOut {
			t.Errorf("%q disassembled to %q", src, dis)
		}
	}
}

// Property: B- and J-immediate encode/extract round-trip.
func TestBranchImmediateProperty(t *testing.T) {
	f := func(raw int16) bool {
		off := (int64(raw) % 4096) &^ 1 // B-type range: ±4 KiB, even
		w := encB(off, 1, 2, 0, opBranch)
		return immB(w) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	g := func(raw int32) bool {
		off := (int64(raw) % (1 << 20)) &^ 1
		w := encJ(off, 1, opJAL)
		return immJ(w) == off
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: I/S immediates round-trip over their full ranges.
func TestISImmediateProperty(t *testing.T) {
	f := func(raw int16) bool {
		imm := int64(raw) % 2048
		wi := encI(imm, 3, 0, 4, opImm)
		ws := encS(imm, 3, 4, 2, opStore)
		return immI(wi) == imm && immS(ws) == imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWords64Packing(t *testing.T) {
	p := asm(t, ".word 0x11111111, 0x22222222, 0x33333333")
	w := p.Words64()
	if len(w) != 2 || w[0] != 0x2222222211111111 || w[1] != 0x33333333 {
		t.Errorf("words64 %x", w)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := make(SliceMemory, 16)
	if _, err := m.Load(15, 4); err == nil {
		t.Error("load past end")
	}
	if err := m.Store(9, 8, 0); err == nil {
		t.Error("store past end")
	}
	if err := m.Store(8, 8, 0xDEADBEEF); err != nil {
		t.Error(err)
	}
	v, err := m.Load(8, 8)
	if err != nil || v != 0xDEADBEEF {
		t.Errorf("%x %v", v, err)
	}
}
