package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled image.
type Program struct {
	// Words are the 32-bit instruction/data words, base address 0.
	Words []uint32
	// Labels maps label names to byte addresses.
	Labels map[string]uint64
}

// Bytes returns the little-endian byte image.
func (p *Program) Bytes() []byte {
	out := make([]byte, 4*len(p.Words))
	for i, w := range p.Words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

// Words64 packs the image into 64-bit words (the RTL memory's geometry).
func (p *Program) Words64() []uint64 {
	out := make([]uint64, (len(p.Words)+1)/2)
	for i, w := range p.Words {
		if i%2 == 0 {
			out[i/2] |= uint64(w)
		} else {
			out[i/2] |= uint64(w) << 32
		}
	}
	return out
}

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

// Assemble translates RV64I assembly into a Program. Supported directives:
// labels ("name:"), .word, .dword, .zero N (N bytes of zeros, 4-aligned),
// comments (# and //). Pseudo-instructions: nop, li, mv, j, jr, ret, call,
// beqz, bnez, la, neg, not, seqz, snez.
func Assemble(src string) (*Program, error) {
	type item struct {
		line  int
		mn    string
		args  []string
		addr  uint64
		words int // words this item occupies
	}

	labels := make(map[string]uint64)
	var items []item
	addr := uint64(0)

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, &asmError{lineNo + 1, "bad label " + label}
			}
			if _, dup := labels[label]; dup {
				return nil, &asmError{lineNo + 1, "duplicate label " + label}
			}
			labels[label] = addr
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		mn, rest := line, ""
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			mn, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		mn = strings.ToLower(mn)
		var args []string
		if rest != "" {
			for _, a := range splitArgs(rest) {
				args = append(args, strings.TrimSpace(a))
			}
		}
		it := item{line: lineNo + 1, mn: mn, args: args, addr: addr}
		it.words = itemWords(mn, args)
		if it.words < 0 {
			return nil, &asmError{it.line, "unknown directive/mnemonic " + mn}
		}
		addr += uint64(4 * it.words)
		items = append(items, it)
	}

	p := &Program{Labels: labels}
	for _, it := range items {
		ws, err := encodeItem(it.mn, it.args, it.addr, labels)
		if err != nil {
			return nil, &asmError{it.line, err.Error()}
		}
		if len(ws) != it.words {
			return nil, &asmError{it.line, fmt.Sprintf("internal: size mismatch %d != %d", len(ws), it.words)}
		}
		p.Words = append(p.Words, ws...)
	}
	return p, nil
}

// splitArgs splits on commas but keeps "imm(reg)" forms whole.
func splitArgs(s string) []string {
	return strings.Split(s, ",")
}

// itemWords returns how many 32-bit words a mnemonic occupies (-1 if
// unknown). li and la may take two instructions; they always reserve two
// for addresses/immediates beyond 12 bits, one when it provably fits.
func itemWords(mn string, args []string) int {
	switch mn {
	case ".word":
		return len(args)
	case ".dword":
		return 2 * len(args)
	case ".zero":
		if len(args) == 1 {
			if n, err := strconv.Atoi(args[0]); err == nil && n >= 0 {
				return (n + 3) / 4
			}
		}
		return -1
	case "li":
		if len(args) == 2 {
			if v, err := parseImm(args[1]); err == nil && fitsI12(v) {
				return 1
			}
		}
		return 2
	case "la":
		return 2
	case "call":
		return 1
	case "nop", "mv", "j", "jr", "ret", "beqz", "bnez", "neg", "not", "seqz", "snez":
		return 1
	}
	if _, ok := encoders[mn]; ok {
		return 1
	}
	return -1
}

func fitsI12(v int64) bool { return v >= -2048 && v <= 2047 }

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

func parseReg(s string) (uint32, error) {
	r, ok := regAliases[strings.TrimSpace(strings.ToLower(s))]
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint32(r), nil
}

// parseMemOperand parses "imm(reg)" or "(reg)".
func parseMemOperand(s string) (int64, uint32, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	imm := int64(0)
	if open > 0 {
		var err error
		imm, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

// resolve parses an immediate or label.
func resolve(s string, labels map[string]uint64) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	if a, ok := labels[strings.TrimSpace(s)]; ok {
		return int64(a), nil
	}
	return 0, fmt.Errorf("undefined symbol %q", s)
}

type encoder func(args []string, addr uint64, labels map[string]uint64) ([]uint32, error)

// rType builds an encoder for an R-type instruction.
func rType(funct7, funct3, opcode uint32) encoder {
	return func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("want rd, rs1, rs2")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		s2, err := parseReg(args[2])
		if err != nil {
			return nil, err
		}
		return []uint32{encR(funct7, s2, s1, funct3, d, opcode)}, nil
	}
}

// iType builds an encoder for an I-type ALU instruction.
func iType(funct3, opcode uint32) encoder {
	return func(args []string, _ uint64, labels map[string]uint64) ([]uint32, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("want rd, rs1, imm")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		imm, err := resolve(args[2], labels)
		if err != nil {
			return nil, err
		}
		if !fitsI12(imm) {
			return nil, fmt.Errorf("immediate %d out of I-type range", imm)
		}
		return []uint32{encI(imm, s1, funct3, d, opcode)}, nil
	}
}

// shType builds an encoder for shift-immediate instructions.
func shType(funct7, funct3, opcode uint32, maxSh int64) encoder {
	return func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("want rd, rs1, shamt")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		sh, err := parseImm(args[2])
		if err != nil {
			return nil, err
		}
		if sh < 0 || sh > maxSh {
			return nil, fmt.Errorf("shift amount %d out of range", sh)
		}
		return []uint32{encI(int64(funct7)<<5|sh, s1, funct3, d, opcode)}, nil
	}
}

// loadType builds an encoder for loads: rd, imm(rs1).
func loadType(funct3 uint32) encoder {
	return func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, imm(rs1)")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return nil, err
		}
		if !fitsI12(imm) {
			return nil, fmt.Errorf("offset %d out of range", imm)
		}
		return []uint32{encI(imm, base, funct3, d, opLoad)}, nil
	}
}

// storeType builds an encoder for stores: rs2, imm(rs1).
func storeType(funct3 uint32) encoder {
	return func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want rs2, imm(rs1)")
		}
		src, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return nil, err
		}
		if !fitsI12(imm) {
			return nil, fmt.Errorf("offset %d out of range", imm)
		}
		return []uint32{encS(imm, src, base, funct3, opStore)}, nil
	}
}

// brType builds an encoder for branches: rs1, rs2, target.
func brType(funct3 uint32) encoder {
	return func(args []string, addr uint64, labels map[string]uint64) ([]uint32, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("want rs1, rs2, target")
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		s2, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		tgt, err := resolve(args[2], labels)
		if err != nil {
			return nil, err
		}
		off := tgt - int64(addr)
		if off < -4096 || off > 4094 || off%2 != 0 {
			return nil, fmt.Errorf("branch offset %d out of range", off)
		}
		return []uint32{encB(off, s2, s1, funct3, opBranch)}, nil
	}
}

var encoders map[string]encoder

func init() {
	encoders = map[string]encoder{
		"add":   rType(0x00, 0b000, opReg),
		"sub":   rType(0x20, 0b000, opReg),
		"sll":   rType(0x00, 0b001, opReg),
		"slt":   rType(0x00, 0b010, opReg),
		"sltu":  rType(0x00, 0b011, opReg),
		"xor":   rType(0x00, 0b100, opReg),
		"srl":   rType(0x00, 0b101, opReg),
		"sra":   rType(0x20, 0b101, opReg),
		"or":    rType(0x00, 0b110, opReg),
		"and":   rType(0x00, 0b111, opReg),
		"addw":  rType(0x00, 0b000, opReg32),
		"subw":  rType(0x20, 0b000, opReg32),
		"sllw":  rType(0x00, 0b001, opReg32),
		"srlw":  rType(0x00, 0b101, opReg32),
		"sraw":  rType(0x20, 0b101, opReg32),
		"addi":  iType(0b000, opImm),
		"slti":  iType(0b010, opImm),
		"sltiu": iType(0b011, opImm),
		"xori":  iType(0b100, opImm),
		"ori":   iType(0b110, opImm),
		"andi":  iType(0b111, opImm),
		"addiw": iType(0b000, opImm32),
		"slli":  shType(0x00, 0b001, opImm, 63),
		"srli":  shType(0x00, 0b101, opImm, 63),
		"srai":  shType(0x20, 0b101, opImm, 63),
		"slliw": shType(0x00, 0b001, opImm32, 31),
		"srliw": shType(0x00, 0b101, opImm32, 31),
		"sraiw": shType(0x20, 0b101, opImm32, 31),
		"lb":    loadType(0b000),
		"lh":    loadType(0b001),
		"lw":    loadType(0b010),
		"ld":    loadType(0b011),
		"lbu":   loadType(0b100),
		"lhu":   loadType(0b101),
		"lwu":   loadType(0b110),
		"sb":    storeType(0b000),
		"sh":    storeType(0b001),
		"sw":    storeType(0b010),
		"sd":    storeType(0b011),
		"beq":   brType(0b000),
		"bne":   brType(0b001),
		"blt":   brType(0b100),
		"bge":   brType(0b101),
		"bltu":  brType(0b110),
		"bgeu":  brType(0b111),
		"lui":   uTypeEnc(opLUI),
		"auipc": uTypeEnc(opAUIPC),
		"jal":   jalEnc,
		"jalr":  jalrEnc,
		"ecall": func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
			return []uint32{encI(0, 0, 0, 0, opSystem)}, nil
		},
		"ebreak": func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
			return []uint32{encI(1, 0, 0, 0, opSystem)}, nil
		},
		"fence": func(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
			return []uint32{encI(0, 0, 0, 0, opFence)}, nil
		},
	}
}

func uTypeEnc(opcode uint32) encoder {
	return func(args []string, _ uint64, labels map[string]uint64) ([]uint32, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, imm")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, err := resolve(args[1], labels)
		if err != nil {
			return nil, err
		}
		return []uint32{encU(imm<<12, d, opcode)}, nil
	}
}

func jalEnc(args []string, addr uint64, labels map[string]uint64) ([]uint32, error) {
	if len(args) == 1 {
		args = []string{"ra", args[0]}
	}
	if len(args) != 2 {
		return nil, fmt.Errorf("want rd, target")
	}
	d, err := parseReg(args[0])
	if err != nil {
		return nil, err
	}
	tgt, err := resolve(args[1], labels)
	if err != nil {
		return nil, err
	}
	off := tgt - int64(addr)
	if off < -(1<<20) || off >= 1<<20 || off%2 != 0 {
		return nil, fmt.Errorf("jal offset %d out of range", off)
	}
	return []uint32{encJ(off, d, opJAL)}, nil
}

func jalrEnc(args []string, _ uint64, _ map[string]uint64) ([]uint32, error) {
	// Forms: jalr rd, imm(rs1) | jalr rd, rs1, imm | jalr rs1
	switch len(args) {
	case 1:
		s1, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		return []uint32{encI(0, s1, 0, 1, opJALR)}, nil
	case 2:
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return nil, err
		}
		return []uint32{encI(imm, base, 0, d, opJALR)}, nil
	case 3:
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return nil, err
		}
		return []uint32{encI(imm, s1, 0, d, opJALR)}, nil
	}
	return nil, fmt.Errorf("bad jalr form")
}

// encodeItem assembles one source item (directive, pseudo, or real
// instruction) into words.
func encodeItem(mn string, args []string, addr uint64, labels map[string]uint64) ([]uint32, error) {
	switch mn {
	case ".word":
		var ws []uint32
		for _, a := range args {
			v, err := resolve(a, labels)
			if err != nil {
				return nil, err
			}
			ws = append(ws, uint32(v))
		}
		return ws, nil
	case ".dword":
		var ws []uint32
		for _, a := range args {
			v, err := resolve(a, labels)
			if err != nil {
				return nil, err
			}
			ws = append(ws, uint32(v), uint32(uint64(v)>>32))
		}
		return ws, nil
	case ".zero":
		n, _ := strconv.Atoi(args[0])
		return make([]uint32, (n+3)/4), nil
	case "nop":
		return []uint32{encI(0, 0, 0b000, 0, opImm)}, nil
	case "mv":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, rs")
		}
		return encodeItem("addi", []string{args[0], args[1], "0"}, addr, labels)
	case "neg":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, rs")
		}
		return encodeItem("sub", []string{args[0], "zero", args[1]}, addr, labels)
	case "not":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, rs")
		}
		return encodeItem("xori", []string{args[0], args[1], "-1"}, addr, labels)
	case "seqz":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, rs")
		}
		return encodeItem("sltiu", []string{args[0], args[1], "1"}, addr, labels)
	case "snez":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, rs")
		}
		return encodeItem("sltu", []string{args[0], "zero", args[1]}, addr, labels)
	case "j":
		if len(args) != 1 {
			return nil, fmt.Errorf("want target")
		}
		return jalEnc([]string{"zero", args[0]}, addr, labels)
	case "call":
		if len(args) != 1 {
			return nil, fmt.Errorf("want target")
		}
		return jalEnc([]string{"ra", args[0]}, addr, labels)
	case "jr":
		if len(args) != 1 {
			return nil, fmt.Errorf("want rs")
		}
		return jalrEnc([]string{"zero", args[0], "0"}, addr, labels)
	case "ret":
		return jalrEnc([]string{"zero", "ra", "0"}, addr, labels)
	case "beqz":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rs, target")
		}
		return encodeItem("beq", []string{args[0], "zero", args[1]}, addr, labels)
	case "bnez":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rs, target")
		}
		return encodeItem("bne", []string{args[0], "zero", args[1]}, addr, labels)
	case "li":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, imm")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return nil, err
		}
		return encodeLI(d, v)
	case "la":
		if len(args) != 2 {
			return nil, fmt.Errorf("want rd, symbol")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := resolve(args[1], labels)
		if err != nil {
			return nil, err
		}
		return encodeLI32(d, v)
	}
	enc, ok := encoders[mn]
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mn)
	}
	return enc(args, addr, labels)
}

// encodeLI materializes a constant; 12-bit constants take one addi,
// 32-bit-representable ones take lui+addiw. Larger constants are not
// needed by the benchmark programs and are rejected.
func encodeLI(d uint32, v int64) ([]uint32, error) {
	if fitsI12(v) {
		return []uint32{encI(v, 0, 0b000, d, opImm)}, nil
	}
	return encodeLI32(d, v)
}

func encodeLI32(d uint32, v int64) ([]uint32, error) {
	if v != int64(int32(v)) {
		// Accept positive 32-bit patterns with bit 31 set (e.g. PGAS
		// global addresses): the register holds the sign-extended
		// pattern, whose low 32 bits are what address hardware consumes.
		if uint64(v)>>32 == 0 {
			v = int64(int32(uint32(v)))
		} else {
			return nil, fmt.Errorf("li constant %#x does not fit 32 bits", v)
		}
	}
	lo := int64(int32(v<<20) >> 20) // low 12, sign extended
	hi := v - lo
	return []uint32{
		encU(hi, d, opLUI),
		encI(lo, d, 0b000, d, opImm32), // addiw keeps 32-bit sign semantics
	}, nil
}
