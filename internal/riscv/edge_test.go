package riscv

import (
	"strings"
	"testing"
)

func TestDisassembleUnknowns(t *testing.T) {
	cases := []uint32{
		0x0000007F,                   // unknown opcode
		encB(0, 1, 2, 2, 0x63),       // bad branch funct3 (010)
		encI(0, 1, 7, 2, 0x03),       // bad load funct3 (111)
		encS(0, 1, 2, 7, 0x23),       // bad store funct3
		encR(0x7F, 1, 2, 0, 3, 0x33), // bad R funct7
		encI(0, 1, 2, 3, 0x1B),       // bad op-imm-32 funct3
	}
	for _, w := range cases {
		if got := Disassemble(w, 0); !strings.HasPrefix(got, ".word") {
			t.Errorf("%#08x disassembled to %q, want .word fallback", w, got)
		}
	}
}

func TestDisassembleFullCoverage(t *testing.T) {
	// Every supported mnemonic disassembles to something containing its
	// own name.
	srcs := []string{
		"lui a0, 1", "auipc a0, 1", "jal ra, 0", "jalr a0, 0(a1)",
		"beq a0, a1, 0", "bne a0, a1, 0", "blt a0, a1, 0", "bge a0, a1, 0",
		"bltu a0, a1, 0", "bgeu a0, a1, 0",
		"lb a0, 0(a1)", "lh a0, 0(a1)", "lw a0, 0(a1)", "ld a0, 0(a1)",
		"lbu a0, 0(a1)", "lhu a0, 0(a1)", "lwu a0, 0(a1)",
		"sb a0, 0(a1)", "sh a0, 0(a1)", "sw a0, 0(a1)", "sd a0, 0(a1)",
		"addi a0, a1, 1", "slti a0, a1, 1", "sltiu a0, a1, 1",
		"xori a0, a1, 1", "ori a0, a1, 1", "andi a0, a1, 1",
		"slli a0, a1, 1", "srli a0, a1, 1", "srai a0, a1, 1",
		"addiw a0, a1, 1", "slliw a0, a1, 1", "srliw a0, a1, 1", "sraiw a0, a1, 1",
		"add a0, a1, a2", "sub a0, a1, a2", "sll a0, a1, a2",
		"slt a0, a1, a2", "sltu a0, a1, a2", "xor a0, a1, a2",
		"srl a0, a1, a2", "sra a0, a1, a2", "or a0, a1, a2", "and a0, a1, a2",
		"addw a0, a1, a2", "subw a0, a1, a2", "sllw a0, a1, a2",
		"srlw a0, a1, a2", "sraw a0, a1, a2",
		"ecall", "ebreak", "fence",
	}
	for _, src := range srcs {
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		mn := strings.Fields(src)[0]
		dis := Disassemble(p.Words[0], 0)
		if !strings.HasPrefix(dis, mn) {
			t.Errorf("%q -> %q", src, dis)
		}
	}
}

func TestISSIllegalInstruction(t *testing.T) {
	mem := make(SliceMemory, 64)
	mem.Store(0, 4, 0x0000007F)
	c := NewCPU(mem)
	if err := c.Step(); err == nil {
		t.Fatal("want illegal-instruction error")
	}
	// Bad sub-encodings.
	for _, w := range []uint32{
		encB(0, 1, 2, 2, 0x63),
		encI(0, 1, 7, 2, 0x03),
		encR(0x7F, 1, 2, 0, 3, 0x33),
		encR(0x7F, 1, 2, 0, 3, 0x3B),
		encI(0, 1, 2, 3, 0x1B),
	} {
		mem.Store(0, 4, uint64(w))
		c := NewCPU(mem)
		if err := c.Step(); err == nil {
			t.Errorf("%#08x: want decode error", w)
		}
	}
	// Bad store funct3 (111).
	mem.Store(0, 4, uint64(encS(0, 1, 2, 7, 0x23)))
	c2 := NewCPU(mem)
	if err := c2.Step(); err == nil {
		t.Error("bad store funct3 accepted")
	}
}

func TestISSMemoryFaults(t *testing.T) {
	mem := make(SliceMemory, 64)
	// ld from far out of range.
	p, _ := Assemble("li a0, 0x7000\nld a1, 0(a0)")
	copy(mem, p.Bytes())
	c := NewCPU(mem)
	if err := c.Run(10); err == nil {
		t.Fatal("want load fault")
	}
	// Fetch out of range.
	c2 := NewCPU(make(SliceMemory, 4))
	c2.PC = 100
	if err := c2.Step(); err == nil {
		t.Fatal("want fetch fault")
	}
	// Step after halt is a no-op.
	c3 := NewCPU(mem)
	c3.Halted = true
	if err := c3.Step(); err != nil || c3.PC != 0 {
		t.Errorf("halted step: %v pc=%d", err, c3.PC)
	}
}

func TestISSInstret(t *testing.T) {
	mem := make(SliceMemory, 64)
	p, _ := Assemble("nop\nnop\nnop\necall")
	copy(mem, p.Bytes())
	c := NewCPU(mem)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Instret != 4 {
		t.Errorf("instret %d", c.Instret)
	}
}

func TestAssembleLabelInDirectives(t *testing.T) {
	p, err := Assemble("start:\n  j start\ntable:\n  .word start, table")
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[1] != 0 || p.Words[2] != 4 {
		t.Errorf("label values in .word: %#x %#x", p.Words[1], p.Words[2])
	}
	if p.Labels["start"] != 0 || p.Labels["table"] != 4 {
		t.Errorf("labels %v", p.Labels)
	}
}

func TestAssembleMultipleLabelsOneLine(t *testing.T) {
	p, err := Assemble("a: b: nop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels %v", p.Labels)
	}
}

func TestPseudoCoverage(t *testing.T) {
	c := runProg(t, `
  li a0, 5
  neg a1, a0        # -5
  not a2, a0        # ~5
  seqz a3, a0       # 0
  li a4, 0
  seqz a5, a4       # 1
  snez a6, a0       # 1
  jr_setup:
  la t0, target
  jr t0
  li a7, 99         # skipped
target:
  ecall
`, 100)
	if int64(c.Regs[11]) != -5 || c.Regs[12] != ^uint64(5) {
		t.Errorf("neg/not %x %x", c.Regs[11], c.Regs[12])
	}
	if c.Regs[13] != 0 || c.Regs[15] != 1 || c.Regs[16] != 1 {
		t.Errorf("seqz/snez %d %d %d", c.Regs[13], c.Regs[15], c.Regs[16])
	}
	if c.Regs[17] == 99 {
		t.Error("jr did not jump")
	}
}
