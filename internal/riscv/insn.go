// Package riscv provides the RV64I toolchain substrate the PGAS benchmark
// needs: an assembler, a disassembler, and a reference instruction-set
// simulator used as the golden model when co-simulating the LiveHDL core.
//
// The paper's evaluation runs real programs on a mesh of 5-stage RV64I
// cores; reproducing it offline requires building this toolchain from
// scratch (no external assembler is available to the build).
package riscv

import "fmt"

// Opcode field values (bits 6:0).
const (
	opLUI    = 0b0110111
	opAUIPC  = 0b0010111
	opJAL    = 0b1101111
	opJALR   = 0b1100111
	opBranch = 0b1100011
	opLoad   = 0b0000011
	opStore  = 0b0100011
	opImm    = 0b0010011
	opImm32  = 0b0011011
	opReg    = 0b0110011
	opReg32  = 0b0111011
	opSystem = 0b1110011
	opFence  = 0b0001111
)

// RegNames lists the ABI register names in x0..x31 order.
var RegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// regAliases maps every accepted register spelling to its index.
var regAliases = func() map[string]int {
	m := make(map[string]int)
	for i, n := range RegNames {
		m[n] = i
		m[fmt.Sprintf("x%d", i)] = i
	}
	m["fp"] = 8
	return m
}()

// encR builds an R-type instruction.
func encR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

// encI builds an I-type instruction (imm is the low 12 bits, sign pattern
// caller's responsibility).
func encI(imm int64, rs1, funct3, rd, opcode uint32) uint32 {
	return uint32(imm&0xFFF)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

// encS builds an S-type instruction.
func encS(imm int64, rs2, rs1, funct3, opcode uint32) uint32 {
	lo := uint32(imm & 0x1F)
	hi := uint32((imm >> 5) & 0x7F)
	return hi<<25 | rs2<<20 | rs1<<15 | funct3<<12 | lo<<7 | opcode
}

// encB builds a B-type instruction. imm is a byte offset (must be even).
func encB(imm int64, rs2, rs1, funct3, opcode uint32) uint32 {
	u := uint32(imm)
	return ((u>>12)&1)<<31 | ((u>>5)&0x3F)<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | ((u>>1)&0xF)<<8 | ((u>>11)&1)<<7 | opcode
}

// encU builds a U-type instruction; imm is the value for bits 31:12.
func encU(imm int64, rd, opcode uint32) uint32 {
	return uint32(imm)&0xFFFFF000 | rd<<7 | opcode
}

// encJ builds a J-type instruction. imm is a byte offset.
func encJ(imm int64, rd, opcode uint32) uint32 {
	u := uint32(imm)
	return ((u>>20)&1)<<31 | ((u>>1)&0x3FF)<<21 | ((u>>11)&1)<<20 |
		((u>>12)&0xFF)<<12 | rd<<7 | opcode
}

// immI extracts the sign-extended I-type immediate.
func immI(insn uint32) int64 { return int64(int32(insn)) >> 20 }

// immS extracts the sign-extended S-type immediate.
func immS(insn uint32) int64 {
	return (int64(int32(insn))>>25)<<5 | int64((insn>>7)&0x1F)
}

// immB extracts the sign-extended B-type immediate.
func immB(insn uint32) int64 {
	v := (int64(int32(insn))>>31)<<12 |
		int64((insn>>7)&1)<<11 |
		int64((insn>>25)&0x3F)<<5 |
		int64((insn>>8)&0xF)<<1
	return v
}

// immU extracts the U-type immediate (already shifted).
func immU(insn uint32) int64 { return int64(int32(insn & 0xFFFFF000)) }

// immJ extracts the sign-extended J-type immediate.
func immJ(insn uint32) int64 {
	return (int64(int32(insn))>>31)<<20 |
		int64((insn>>12)&0xFF)<<12 |
		int64((insn>>20)&1)<<11 |
		int64((insn>>21)&0x3FF)<<1
}

func rd(insn uint32) uint32     { return (insn >> 7) & 0x1F }
func rs1(insn uint32) uint32    { return (insn >> 15) & 0x1F }
func rs2(insn uint32) uint32    { return (insn >> 20) & 0x1F }
func funct3(insn uint32) uint32 { return (insn >> 12) & 0x7 }
func funct7(insn uint32) uint32 { return insn >> 25 }
