package riscv

import "fmt"

// Memory is the ISS's view of the address space. Addresses are byte
// addresses; size is 1, 2, 4 or 8. Load returns the raw (zero-extended)
// bytes; the CPU applies sign extension.
type Memory interface {
	Load(addr uint64, size int) (uint64, error)
	Store(addr uint64, size int, val uint64) error
}

// SliceMemory is a simple byte-backed Memory.
type SliceMemory []byte

// Load implements Memory.
func (m SliceMemory) Load(addr uint64, size int) (uint64, error) {
	if addr+uint64(size) > uint64(len(m)) {
		return 0, fmt.Errorf("load out of range: %#x+%d", addr, size)
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m[addr+uint64(i)])
	}
	return v, nil
}

// Store implements Memory.
func (m SliceMemory) Store(addr uint64, size int, val uint64) error {
	if addr+uint64(size) > uint64(len(m)) {
		return fmt.Errorf("store out of range: %#x+%d", addr, size)
	}
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
	return nil
}

// CPU is the reference RV64I instruction-set simulator: the golden model
// the LiveHDL core is co-simulated against.
type CPU struct {
	Regs [32]uint64
	PC   uint64
	Mem  Memory
	// Halted is set by ecall/ebreak (the benchmark's stop convention).
	Halted bool
	// Instret counts retired instructions.
	Instret uint64
}

// NewCPU creates a CPU over mem starting at pc 0.
func NewCPU(mem Memory) *CPU { return &CPU{Mem: mem} }

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	raw, err := c.Mem.Load(c.PC, 4)
	if err != nil {
		return fmt.Errorf("fetch at %#x: %w", c.PC, err)
	}
	insn := uint32(raw)
	next := c.PC + 4
	wr := func(r uint32, v uint64) {
		if r != 0 {
			c.Regs[r] = v
		}
	}
	sext32 := func(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

	switch insn & 0x7F {
	case opLUI:
		wr(rd(insn), uint64(immU(insn)))
	case opAUIPC:
		wr(rd(insn), c.PC+uint64(immU(insn)))
	case opJAL:
		wr(rd(insn), next)
		next = c.PC + uint64(immJ(insn))
	case opJALR:
		t := (c.Regs[rs1(insn)] + uint64(immI(insn))) &^ 1
		wr(rd(insn), next)
		next = t
	case opBranch:
		a, b := c.Regs[rs1(insn)], c.Regs[rs2(insn)]
		var take bool
		switch funct3(insn) {
		case 0b000:
			take = a == b
		case 0b001:
			take = a != b
		case 0b100:
			take = int64(a) < int64(b)
		case 0b101:
			take = int64(a) >= int64(b)
		case 0b110:
			take = a < b
		case 0b111:
			take = a >= b
		default:
			return fmt.Errorf("bad branch funct3 %d at %#x", funct3(insn), c.PC)
		}
		if take {
			next = c.PC + uint64(immB(insn))
		}
	case opLoad:
		addr := c.Regs[rs1(insn)] + uint64(immI(insn))
		var v uint64
		switch funct3(insn) {
		case 0b000: // lb
			raw, err := c.Mem.Load(addr, 1)
			if err != nil {
				return err
			}
			v = uint64(int64(int8(raw)))
		case 0b001: // lh
			raw, err := c.Mem.Load(addr, 2)
			if err != nil {
				return err
			}
			v = uint64(int64(int16(raw)))
		case 0b010: // lw
			raw, err := c.Mem.Load(addr, 4)
			if err != nil {
				return err
			}
			v = uint64(int64(int32(raw)))
		case 0b011: // ld
			raw, err := c.Mem.Load(addr, 8)
			if err != nil {
				return err
			}
			v = raw
		case 0b100: // lbu
			raw, err := c.Mem.Load(addr, 1)
			if err != nil {
				return err
			}
			v = raw
		case 0b101: // lhu
			raw, err := c.Mem.Load(addr, 2)
			if err != nil {
				return err
			}
			v = raw
		case 0b110: // lwu
			raw, err := c.Mem.Load(addr, 4)
			if err != nil {
				return err
			}
			v = raw
		default:
			return fmt.Errorf("bad load funct3 %d at %#x", funct3(insn), c.PC)
		}
		wr(rd(insn), v)
	case opStore:
		addr := c.Regs[rs1(insn)] + uint64(immS(insn))
		size := []int{1, 2, 4, 8}[funct3(insn)&3]
		if funct3(insn) > 0b011 {
			return fmt.Errorf("bad store funct3 %d at %#x", funct3(insn), c.PC)
		}
		if err := c.Mem.Store(addr, size, c.Regs[rs2(insn)]); err != nil {
			return err
		}
	case opImm:
		a := c.Regs[rs1(insn)]
		imm := uint64(immI(insn))
		var v uint64
		switch funct3(insn) {
		case 0b000:
			v = a + imm
		case 0b010:
			v = b2u(int64(a) < int64(imm))
		case 0b011:
			v = b2u(a < imm)
		case 0b100:
			v = a ^ imm
		case 0b110:
			v = a | imm
		case 0b111:
			v = a & imm
		case 0b001:
			v = a << (imm & 63)
		case 0b101:
			if insn>>30&1 == 1 {
				v = uint64(int64(a) >> (imm & 63))
			} else {
				v = a >> (imm & 63)
			}
		}
		wr(rd(insn), v)
	case opImm32:
		a := c.Regs[rs1(insn)]
		imm := uint64(immI(insn))
		var v uint64
		switch funct3(insn) {
		case 0b000:
			v = sext32(a + imm)
		case 0b001:
			v = sext32(a << (imm & 31))
		case 0b101:
			if insn>>30&1 == 1 {
				v = uint64(int64(int32(uint32(a))) >> (imm & 31))
			} else {
				v = sext32(uint64(uint32(a) >> (imm & 31)))
			}
		default:
			return fmt.Errorf("bad op-imm-32 funct3 %d at %#x", funct3(insn), c.PC)
		}
		wr(rd(insn), v)
	case opReg:
		a, b := c.Regs[rs1(insn)], c.Regs[rs2(insn)]
		var v uint64
		switch funct3(insn)<<8 | funct7(insn) {
		case 0b000<<8 | 0x00:
			v = a + b
		case 0b000<<8 | 0x20:
			v = a - b
		case 0b001<<8 | 0x00:
			v = a << (b & 63)
		case 0b010<<8 | 0x00:
			v = b2u(int64(a) < int64(b))
		case 0b011<<8 | 0x00:
			v = b2u(a < b)
		case 0b100<<8 | 0x00:
			v = a ^ b
		case 0b101<<8 | 0x00:
			v = a >> (b & 63)
		case 0b101<<8 | 0x20:
			v = uint64(int64(a) >> (b & 63))
		case 0b110<<8 | 0x00:
			v = a | b
		case 0b111<<8 | 0x00:
			v = a & b
		default:
			return fmt.Errorf("bad op funct %x at %#x", insn, c.PC)
		}
		wr(rd(insn), v)
	case opReg32:
		a, b := c.Regs[rs1(insn)], c.Regs[rs2(insn)]
		var v uint64
		switch funct3(insn)<<8 | funct7(insn) {
		case 0b000<<8 | 0x00:
			v = sext32(a + b)
		case 0b000<<8 | 0x20:
			v = sext32(a - b)
		case 0b001<<8 | 0x00:
			v = sext32(a << (b & 31))
		case 0b101<<8 | 0x00:
			v = sext32(uint64(uint32(a) >> (b & 31)))
		case 0b101<<8 | 0x20:
			v = uint64(int64(int32(uint32(a))) >> (b & 31))
		default:
			return fmt.Errorf("bad op-32 funct %x at %#x", insn, c.PC)
		}
		wr(rd(insn), v)
	case opSystem:
		c.Halted = true // ecall/ebreak both halt in this environment
	case opFence:
		// no-op
	default:
		return fmt.Errorf("illegal instruction %#08x at %#x", insn, c.PC)
	}
	c.PC = next
	c.Instret++
	return nil
}

// Run executes up to maxSteps instructions or until halt.
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps && !c.Halted; i++ {
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
