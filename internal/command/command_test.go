package command

import (
	"strings"
	"testing"

	"livesim/internal/core"
	"livesim/internal/liveparser"
)

const tinyDesign = `
module accum (input clk, input en, input [15:0] d, output reg [31:0] total);
  always @(posedge clk) begin
    if (en) total <= total + d;
  end
endmodule

module top (input clk, input en, input [15:0] d, output [31:0] total);
  accum u0 (.clk(clk), .en(en), .d(d), .total(total));
endmodule
`

func bootTiny(t *testing.T) *core.Session {
	t.Helper()
	s, err := BootSource("top", map[string]string{"top.v": tinyDesign}, core.Config{CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDispatchDrivesASession(t *testing.T) {
	var out strings.Builder
	env := &Env{Session: bootTiny(t), Out: &out}
	steps := []string{
		"instpipe p0",
		"pipes",
		"run clock p0 50",
		"cycle p0",
		"peek p0 top.u0.total",
		"checkpoints p0",
		"health",
	}
	for _, line := range steps {
		if err := DispatchLine(env, line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	text := out.String()
	if !strings.Contains(text, "pipe p0 at cycle 50") {
		t.Errorf("run output missing cycle: %q", text)
	}
	if !strings.Contains(text, "50 (version v0)") {
		t.Errorf("cycle output missing: %q", text)
	}
	if !strings.Contains(text, "status: ok") {
		t.Errorf("health output missing: %q", text)
	}
}

func TestDispatchValidation(t *testing.T) {
	env := &Env{Session: bootTiny(t), Out: &strings.Builder{}}
	if err := DispatchLine(env, "warp 9"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown verb: %v", err)
	}
	if err := DispatchLine(env, "run clock"); err == nil || !strings.Contains(err.Error(), "usage: run") {
		t.Errorf("arity check: %v", err)
	}
	if err := DispatchLine(env, "stats"); err == nil || !strings.Contains(err.Error(), "metrics are disabled") {
		t.Errorf("nil metrics: %v", err)
	}
	if err := DispatchLine(env, "apply"); err == nil || !strings.Contains(err.Error(), "not available") {
		t.Errorf("nil ApplySource: %v", err)
	}
	if err := DispatchLine(env, ""); err != nil {
		t.Errorf("blank line: %v", err)
	}
}

func TestApplyThroughSharedCommand(t *testing.T) {
	var out strings.Builder
	edited := strings.Replace(tinyDesign, "total + d", "total + d + 1", 1)
	env := &Env{
		Session: bootTiny(t),
		Out:     &out,
		ApplySource: func() (liveparser.Source, error) {
			return liveparser.Source{Files: map[string]string{"top.v": edited}}, nil
		},
	}
	for _, line := range []string{"instpipe p0", "run clock p0 120", "apply"} {
		if err := DispatchLine(env, line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	if !strings.Contains(out.String(), "swapped") {
		t.Errorf("apply output: %q", out.String())
	}
	if v := env.Session.Version(); v != "v1" {
		t.Errorf("version after apply = %s", v)
	}
}

func TestHelpTextCoversEveryVerb(t *testing.T) {
	help := HelpText()
	for _, c := range All() {
		if !strings.Contains(help, c.Usage) {
			t.Errorf("help text is missing %q", c.Usage)
		}
	}
	if len(All()) != len(Names()) {
		t.Errorf("All()=%d Names()=%d", len(All()), len(Names()))
	}
}

func TestProfileVerb(t *testing.T) {
	var out strings.Builder
	env := &Env{Session: bootTiny(t), Out: &out}
	for _, line := range []string{
		"instpipe p0",
		"profile start",
		"run clock p0 80",
		"profile report",
	} {
		if err := DispatchLine(env, line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	text := out.String()
	if !strings.Contains(text, "pipe p0 (recording):") {
		t.Errorf("report missing pipe header: %q", text)
	}
	if !strings.Contains(text, "u0") || !strings.Contains(text, "quiescence:") {
		t.Errorf("report missing heat tree content: %q", text)
	}

	// JSON form round-trips through the same snapshot.
	out.Reset()
	if err := DispatchLine(env, "profile report p0 json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"pipe":"p0"`) {
		t.Errorf("json report: %q", out.String())
	}

	// stop / reset are acknowledged; report with no data explains itself.
	out.Reset()
	for _, line := range []string{"profile stop", "profile reset"} {
		if err := DispatchLine(env, line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	if err := DispatchLine(env, "profile bogus"); err == nil || !strings.Contains(err.Error(), "usage: profile") {
		t.Errorf("bad subverb: %v", err)
	}
	if err := DispatchLine(env, "profile start json"); err == nil {
		t.Error("json on non-report subverb should fail")
	}
	// The verb must stay non-mutating: journaled replay and client
	// resend correctness both depend on it.
	for _, c := range All() {
		if c.Name == "profile" && c.Mutates {
			t.Error("profile verb marked Mutates")
		}
	}
}
