package command

import (
	"fmt"

	"livesim/internal/core"
	"livesim/internal/liveparser"
	"livesim/internal/pgas"
)

// BootPGAS builds a ready session hosting the built-in n-node PGAS mesh
// demo, with its deterministic testbench registered as "tb0" — the same
// bring-up the shell's -pgas flag performs, shared so the server's
// `create` verb cannot drift from it.
func BootPGAS(n int, cfg core.Config) (*core.Session, error) {
	s := core.NewSession(pgas.TopName(n), cfg)
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		return nil, err
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		return nil, err
	}
	s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
	return s, nil
}

// BootSource builds a ready session from user-supplied source files with
// the do-nothing "clock" testbench registered — the shell's -dir
// bring-up and the server's files-based `create`.
func BootSource(top string, files map[string]string, cfg core.Config) (*core.Session, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("no source files supplied")
	}
	if top == "" {
		top = "top"
	}
	s := core.NewSession(top, cfg)
	if _, err := s.LoadDesign(liveparser.Source{Files: files}); err != nil {
		return nil, err
	}
	s.RegisterTestbench("clock", core.NewStatelessTB(nil))
	return s, nil
}
