// Package command is the single implementation of LiveSim's user-facing
// command vocabulary (the paper's Table I plus inspection commands).
// Both frontends dispatch into this table — the interactive shell in
// cmd/livesim and the livesimd wire protocol in internal/server — so the
// `help` text, the argument validation and the behaviour of every verb
// cannot drift between the two.
package command

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"livesim/internal/core"
	"livesim/internal/liveparser"
	"livesim/internal/obs"
	"livesim/internal/trace"
)

// Env is everything a command needs to run. Out receives the command's
// human-readable output (the shell points it at stdout; the server
// captures it into the response). ApplySource supplies the full design
// source for `apply` — the shell re-reads its -dir, the server takes the
// files shipped in the request — and nil disables the verb.
type Env struct {
	Session *core.Session
	// Metrics backs the `stats` command; nil reports metrics as disabled.
	Metrics *obs.Registry
	// ApplySource returns the edited design source for `apply`.
	ApplySource func() (liveparser.Source, error)
	Out io.Writer
}

// Command is one verb of the vocabulary.
type Command struct {
	Name  string
	Usage string // full usage line, e.g. "run <tb> <pipe> <cycles>"
	Help  string // one-line description for help output
	// MinArgs/MaxArgs bound len(args); MaxArgs -1 means variadic.
	MinArgs, MaxArgs int
	// Mutates marks verbs that change session state; the server uses it
	// to track sessions that need a checkpoint on drain or eviction.
	Mutates bool
	// Cost weights this verb against the server's global admission
	// budget: a 200-cycle run occupies more of the daemon than a cycle
	// query. Zero means the default weight of 1.
	Cost int
	Run  func(env *Env, args []string) error
}

var registry = map[string]*Command{}
var order []string

// Register adds a command to the shared table. Duplicate names panic:
// the table is assembled at init time and a collision is a programming
// error, not a runtime condition.
func Register(c *Command) {
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("command %q registered twice", c.Name))
	}
	registry[c.Name] = c
	order = append(order, c.Name)
}

// Lookup finds a command by name.
func Lookup(name string) (*Command, bool) {
	c, ok := registry[strings.ToLower(name)]
	return c, ok
}

// All returns the registered commands in registration order.
func All() []*Command {
	out := make([]*Command, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// HelpText renders the shared portion of the help screen — one aligned
// line per verb, identical in the shell and over the wire.
func HelpText() string {
	var b strings.Builder
	for _, c := range All() {
		fmt.Fprintf(&b, "  %-29s %s\n", c.Usage, c.Help)
	}
	return b.String()
}

// CostOf returns a verb's admission-budget weight: its registered Cost,
// or 1 for unweighted verbs and unknown names (an unknown verb still
// occupies a queue slot until it is rejected).
func CostOf(name string) int {
	if c, ok := Lookup(name); ok && c.Cost > 0 {
		return c.Cost
	}
	return 1
}

// Dispatch validates the argument count and runs the named command.
func Dispatch(env *Env, name string, args []string) error {
	c, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("unknown command %q (try help)", name)
	}
	if len(args) < c.MinArgs || (c.MaxArgs >= 0 && len(args) > c.MaxArgs) {
		return fmt.Errorf("usage: %s", c.Usage)
	}
	return c.Run(env, args)
}

// DispatchLine splits a shell line into verb and arguments and runs it.
func DispatchLine(env *Env, line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	return Dispatch(env, fields[0], fields[1:])
}


func init() {
	minMax := func(c *Command, lo, hi int) *Command { c.MinArgs, c.MaxArgs = lo, hi; return c }

	Register(&Command{
		Name: "ldlib", Usage: "ldlib", Help: "list the Object Library Table",
		Run: func(env *Env, _ []string) error {
			for _, e := range env.Session.Library() {
				fmt.Fprintf(env.Out, "  %-10s %-10s %-30s %s\n", e.Handle, e.Type, e.CodePath, e.ObjectPath)
			}
			return nil
		},
	})

	Register(minMax(&Command{
		Name: "instpipe", Usage: "instpipe <name>", Help: "instantiate a pipeline", Mutates: true, Cost: 4,
		Run: func(env *Env, args []string) error {
			_, err := env.Session.InstPipe(args[0])
			return err
		},
	}, 1, 1))

	Register(minMax(&Command{
		Name: "copypipe", Usage: "copypipe <new> <old>", Help: "copy a pipeline including state", Mutates: true, Cost: 4,
		Run: func(env *Env, args []string) error {
			_, err := env.Session.CopyPipe(args[0], args[1])
			return err
		},
	}, 2, 2))

	Register(&Command{
		Name: "pipes", Usage: "pipes", Help: "list the Pipeline Table",
		Run: func(env *Env, _ []string) error {
			for _, r := range env.Session.Pipes() {
				fmt.Fprintf(env.Out, "  %-10s %-12s %s\n", r.Name, r.Handle, r.Pointer)
			}
			return nil
		},
	})

	Register(minMax(&Command{
		Name: "stages", Usage: "stages <pipe>", Help: "list the Stage Table",
		Run: func(env *Env, args []string) error {
			rows, err := env.Session.Stages(args[0])
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Fprintf(env.Out, "  %-28s %-14s %s\n", r.StageName, r.Handle, r.Pointer)
			}
			return nil
		},
	}, 1, 1))

	Register(minMax(&Command{
		Name: "run", Usage: "run <tb> <pipe> <cycles>", Help: "run a testbench", Mutates: true, Cost: 8,
		Run: func(env *Env, args []string) error {
			cycles, err := strconv.Atoi(args[2])
			if err != nil {
				return err
			}
			if err := env.Session.Run(args[0], args[1], cycles); err != nil {
				return err
			}
			p, _ := env.Session.Pipe(args[1])
			fmt.Fprintf(env.Out, "  pipe %s at cycle %d\n", args[1], p.Sim.Cycle())
			return nil
		},
	}, 3, 3))

	Register(minMax(&Command{
		Name: "chkp", Usage: "chkp <pipe> <path>", Help: "save a checkpoint file",
		Run: func(env *Env, args []string) error {
			return env.Session.SaveCheckpoint(args[0], args[1])
		},
	}, 2, 2))

	Register(minMax(&Command{
		Name: "ldch", Usage: "ldch <pipe> <path>", Help: "load a checkpoint file", Mutates: true, Cost: 2,
		Run: func(env *Env, args []string) error {
			return env.Session.LoadCheckpoint(args[0], args[1])
		},
	}, 2, 2))

	Register(&Command{
		Name: "apply", Usage: "apply", Help: "re-read sources and hot reload (ERD loop)", Mutates: true, Cost: 8,
		Run: func(env *Env, _ []string) error {
			if env.ApplySource == nil {
				return fmt.Errorf("apply is not available here (no source provider)")
			}
			src, err := env.ApplySource()
			if err != nil {
				return err
			}
			rep, err := env.Session.ApplyChange(src)
			if err != nil {
				if rep != nil && rep.RolledBack {
					fmt.Fprintf(env.Out, "  change failed on pipe %s and was rolled back; still on version %s\n",
						rep.FailedPipe, env.Session.Version())
				}
				return err
			}
			if rep.NoChange {
				fmt.Fprintln(env.Out, "  no behavioural change")
				return nil
			}
			fmt.Fprintf(env.Out, "  swapped %v in %v (compile %v, swap %v, reload %v, re-exec %v)\n",
				rep.Swapped, rep.Total,
				rep.CompileStats.CompileTime, rep.SwapTime, rep.ReloadTime, rep.ReExecTime)
			rep.WaitVerification()
			for _, h := range rep.Verifications {
				if h.Err != nil {
					return h.Err
				}
				fmt.Fprintf(env.Out, "  verification: consistent=%v refined=%v\n", h.Result.Consistent(), h.Refined)
			}
			return nil
		},
	})

	Register(&Command{
		Name: "history", Usage: "history", Help: "show the register transform history",
		Run: func(env *Env, _ []string) error {
			fmt.Fprint(env.Out, env.Session.TransformOps().Describe())
			return nil
		},
	})

	Register(minMax(&Command{
		Name: "peek", Usage: "peek <pipe> <hier.signal>", Help: "read a signal",
		Run: func(env *Env, args []string) error {
			p, ok := env.Session.Pipe(args[0])
			if !ok {
				return fmt.Errorf("no pipe %q", args[0])
			}
			v, err := p.Sim.Peek(args[1])
			if err != nil {
				return err
			}
			fmt.Fprintf(env.Out, "  %s = %d (%#x)\n", args[1], v, v)
			return nil
		},
	}, 2, 2))

	Register(minMax(&Command{
		Name: "poke", Usage: "poke <pipe> <hier.signal> <v>", Help: "write a signal", Mutates: true, Cost: 2,
		Run: func(env *Env, args []string) error {
			p, ok := env.Session.Pipe(args[0])
			if !ok {
				return fmt.Errorf("no pipe %q", args[0])
			}
			v, err := strconv.ParseUint(args[2], 0, 64)
			if err != nil {
				return err
			}
			return p.Sim.Poke(args[1], v)
		},
	}, 3, 3))

	Register(minMax(&Command{
		Name: "trace", Usage: "trace <tb> <pipe> <cycles> <file.vcd> [scope]",
		Help: "run while dumping a VCD waveform", Mutates: true, Cost: 8,
		Run: func(env *Env, args []string) error {
			cycles, err := strconv.Atoi(args[2])
			if err != nil {
				return err
			}
			p, ok := env.Session.Pipe(args[1])
			if !ok {
				return fmt.Errorf("no pipe %q", args[1])
			}
			f, err := os.Create(args[3])
			if err != nil {
				return err
			}
			defer f.Close()
			filter := trace.All()
			if len(args) >= 5 {
				filter = trace.Under(args[4])
			}
			tr, err := trace.New(f, p.Sim, filter)
			if err != nil {
				return err
			}
			defer tr.Close()
			for i := 0; i < cycles; i++ {
				if err := env.Session.Run(args[0], args[1], 1); err != nil {
					return err
				}
				if err := tr.Sample(); err != nil {
					return err
				}
			}
			fmt.Fprintf(env.Out, "  wrote %s (%d signals, %d cycles)\n", args[3], tr.NumProbes(), cycles)
			return nil
		},
	}, 4, 5))

	Register(minMax(&Command{
		Name: "checkpoints", Usage: "checkpoints <pipe>", Help: "list the pipe's checkpoints",
		Run: func(env *Env, args []string) error {
			p, ok := env.Session.Pipe(args[0])
			if !ok {
				return fmt.Errorf("no pipe %q", args[0])
			}
			for _, cp := range p.Checkpoints.All() {
				fmt.Fprintf(env.Out, "  #%-4d cycle %-10d version %-4s %8d bytes\n",
					cp.ID, cp.Cycle, cp.Version, cp.State.Bytes())
			}
			return nil
		},
	}, 1, 1))

	Register(minMax(&Command{
		Name: "cycle", Usage: "cycle <pipe>", Help: "show the pipe's cycle",
		Run: func(env *Env, args []string) error {
			p, ok := env.Session.Pipe(args[0])
			if !ok {
				return fmt.Errorf("no pipe %q", args[0])
			}
			fmt.Fprintf(env.Out, "  %d (version %s)\n", p.Sim.Cycle(), env.Session.Version())
			return nil
		},
	}, 1, 1))

	Register(&Command{
		Name: "health", Usage: "health", Help: "show the session's robustness summary",
		Run: func(env *Env, _ []string) error {
			fmt.Fprintln(env.Out, indent(env.Session.Health().String()))
			return nil
		},
	})

	// profile is deliberately Mutates: false — it changes only
	// observability state, never simulated state, so the server neither
	// journals it nor needs a checkpoint before eviction, and a client
	// may safely resend it after a reconnect.
	Register(minMax(&Command{
		Name: "profile", Usage: "profile <start|stop|report|reset> [pipe] [json]",
		Help: "control the activity/heat profiler",
		Run: func(env *Env, args []string) error {
			sub := args[0]
			rest := args[1:]
			wantJSON := false
			if n := len(rest); n > 0 && rest[n-1] == "json" {
				wantJSON = true
				rest = rest[:n-1]
			}
			pipe := ""
			if len(rest) > 0 {
				pipe = rest[0]
			}
			if wantJSON && sub != "report" {
				return fmt.Errorf("usage: profile %s [pipe]", sub)
			}
			switch sub {
			case "start":
				n, err := env.Session.ProfileStart(pipe)
				if err != nil {
					return err
				}
				fmt.Fprintf(env.Out, "  profiling %d pipe(s)\n", n)
				return nil
			case "stop":
				n, err := env.Session.ProfileStop(pipe)
				if err != nil {
					return err
				}
				fmt.Fprintf(env.Out, "  stopped %d pipe(s)\n", n)
				return nil
			case "reset":
				n, err := env.Session.ProfileReset(pipe)
				if err != nil {
					return err
				}
				fmt.Fprintf(env.Out, "  reset %d profiler(s)\n", n)
				return nil
			case "report":
				profiles, err := env.Session.ProfileSnapshot(pipe)
				if err != nil {
					return err
				}
				if wantJSON {
					data, err := json.Marshal(profiles)
					if err != nil {
						return err
					}
					fmt.Fprintf(env.Out, "%s\n", data)
					return nil
				}
				if len(profiles) == 0 {
					fmt.Fprintln(env.Out, "  no profile data (run `profile start` first)")
					return nil
				}
				for _, pp := range profiles {
					state := "stopped"
					if pp.Enabled {
						state = "recording"
					}
					fmt.Fprintf(env.Out, "pipe %s (%s):\n", pp.Pipe, state)
					var b strings.Builder
					pp.Snapshot.Render(&b)
					fmt.Fprintln(env.Out, indent(strings.TrimRight(b.String(), "\n")))
				}
				return nil
			default:
				return fmt.Errorf("usage: profile <start|stop|report|reset> [pipe] [json]")
			}
		},
	}, 1, 3))

	Register(minMax(&Command{
		Name: "stats", Usage: "stats [json]", Help: "dump the metrics registry",
		Run: func(env *Env, args []string) error {
			if env.Metrics == nil {
				return fmt.Errorf("metrics are disabled; restart with -metrics")
			}
			if len(args) == 1 {
				if args[0] != "json" {
					return fmt.Errorf("usage: stats [json]")
				}
				fmt.Fprintf(env.Out, "%s\n", env.Metrics.Snapshot().JSON())
				return nil
			}
			return env.Metrics.WriteText(env.Out)
		},
	}, 0, 1))
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

// Names returns the sorted verb names — the protocol's session-verb set.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
