// Package verify implements the checkpoint consistency verification of
// Sections III-F and Figure 6 of the paper.
//
// After a hot patch, old checkpoints may describe states the new code can
// never reach. Rather than re-running the whole simulation from cycle 0,
// LiveSim verifies checkpoint-to-checkpoint: each segment [cp_i, cp_i+1]
// is replayed under the new code starting from cp_i's (transformed) state,
// and the result is compared with cp_i+1. Segments are independent, so
// they verify in parallel — "this operation can be easily made parallel
// and can scale to a large number of cores (as many as checkpoints before
// the current cycle)". The earliest diverging segment tells the session
// where its fast estimate stops being trustworthy, and is itself a useful
// debugging fact ("identifying at which checkpoint the divergence
// occurred").
package verify

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/checkpoint"
	"livesim/internal/sim"
)

// ReplayFn re-executes the simulation under the *current* code from the
// given checkpoint's state up to toCycle, returning the resulting state.
// The session supplies this; it encapsulates state transformation and
// testbench-history replay.
type ReplayFn func(from *checkpoint.Checkpoint, toCycle uint64) (*sim.State, error)

// CompareFn decides whether a replayed state is consistent with a
// recorded checkpoint. detail describes the first difference found.
type CompareFn func(replayed *sim.State, recorded *checkpoint.Checkpoint) (consistent bool, detail string)

// SegmentResult reports one verified segment.
type SegmentResult struct {
	FromCycle, ToCycle uint64
	Consistent         bool
	Skipped            bool // canceled because an earlier divergence was found
	Detail             string
	Err                error
	Elapsed            time.Duration
}

// Result is the outcome of a verification run.
type Result struct {
	Segments []SegmentResult
	// FirstDivergence is the index of the earliest inconsistent segment,
	// or -1 when every checked segment was consistent.
	FirstDivergence int
	// Workers is the parallelism actually used.
	Workers int
	Elapsed time.Duration
}

// Consistent reports whether all segments verified clean.
func (r *Result) Consistent() bool { return r.FirstDivergence < 0 }

// Options configures a verification run.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Compare overrides the state comparator; nil uses StateEqual.
	Compare CompareFn
}

// Run verifies consecutive checkpoint segments in parallel. cps must be
// ordered by cycle (checkpoint.Store.Before returns them that way).
func Run(cps []*checkpoint.Checkpoint, replay ReplayFn, opts Options) (*Result, error) {
	if len(cps) < 2 {
		return &Result{FirstDivergence: -1, Workers: 0}, nil
	}
	compare := opts.Compare
	if compare == nil {
		compare = func(replayed *sim.State, recorded *checkpoint.Checkpoint) (bool, string) {
			return StateEqual(replayed, recorded.State)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nseg := len(cps) - 1
	if workers > nseg {
		workers = nseg
	}

	res := &Result{
		Segments:        make([]SegmentResult, nseg),
		FirstDivergence: -1,
		Workers:         workers,
	}
	start := time.Now()

	// earliestBad lets workers skip segments that no longer matter.
	earliestBad := int64(nseg)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= nseg {
					return
				}
				sr := &res.Segments[i]
				sr.FromCycle = cps[i].Cycle
				sr.ToCycle = cps[i+1].Cycle
				if int64(i) > atomic.LoadInt64(&earliestBad) {
					sr.Skipped = true
					continue
				}
				t0 := time.Now()
				replayed, err := replay(cps[i], cps[i+1].Cycle)
				if err != nil {
					sr.Err = err
					sr.Elapsed = time.Since(t0)
					storeMin(&earliestBad, int64(i))
					continue
				}
				ok, detail := compare(replayed, cps[i+1])
				sr.Consistent = ok
				sr.Detail = detail
				sr.Elapsed = time.Since(t0)
				if !ok {
					storeMin(&earliestBad, int64(i))
				}
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	for i := range res.Segments {
		sr := &res.Segments[i]
		if sr.Err != nil {
			return res, fmt.Errorf("segment %d (%d..%d): %w", i, sr.FromCycle, sr.ToCycle, sr.Err)
		}
		if !sr.Skipped && !sr.Consistent {
			res.FirstDivergence = i
			break
		}
	}
	return res, nil
}

func storeMin(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// StateEqual compares two simulation states structurally, reporting the
// first differing signal or memory word.
func StateEqual(a, b *sim.State) (bool, string) {
	if a.Cycle != b.Cycle {
		return false, fmt.Sprintf("cycle %d vs %d", a.Cycle, b.Cycle)
	}
	if len(a.Nodes) != len(b.Nodes) {
		return false, fmt.Sprintf("instance count %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.Path != nb.Path {
			return false, fmt.Sprintf("node %d path %q vs %q", i, na.Path, nb.Path)
		}
		if len(na.Slots) != len(nb.Slots) {
			return false, fmt.Sprintf("%s: slot count %d vs %d", na.Path, len(na.Slots), len(nb.Slots))
		}
		for j := range na.Slots {
			if na.Slots[j] != nb.Slots[j] {
				return false, fmt.Sprintf("%s slot %d: %#x vs %#x", na.Path, j, na.Slots[j], nb.Slots[j])
			}
		}
		if len(na.Mems) != len(nb.Mems) {
			return false, fmt.Sprintf("%s: memory count differs", na.Path)
		}
		for mi := range na.Mems {
			ma, mb := na.Mems[mi], nb.Mems[mi]
			if len(ma) != len(mb) {
				return false, fmt.Sprintf("%s mem %d: depth %d vs %d", na.Path, mi, len(ma), len(mb))
			}
			for j := range ma {
				if ma[j] != mb[j] {
					return false, fmt.Sprintf("%s mem %d[%d]: %#x vs %#x", na.Path, mi, j, ma[j], mb[j])
				}
			}
		}
	}
	return true, ""
}

// RegsEqual compares only architectural registers (by slot position) —
// useful when wire slots may legitimately differ (e.g. unsettled comb
// state in a stored checkpoint).
func RegsEqual(a, b *sim.State, regSlots map[string][]uint32) (bool, string) {
	if len(a.Nodes) != len(b.Nodes) {
		return false, "instance count differs"
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		slots := regSlots[na.ObjKey]
		for _, s := range slots {
			if int(s) >= len(na.Slots) || int(s) >= len(nb.Slots) {
				return false, fmt.Sprintf("%s: reg slot %d out of range", na.Path, s)
			}
			if na.Slots[s] != nb.Slots[s] {
				return false, fmt.Sprintf("%s reg slot %d: %#x vs %#x", na.Path, s, na.Slots[s], nb.Slots[s])
			}
		}
		for mi := range na.Mems {
			if mi >= len(nb.Mems) {
				return false, fmt.Sprintf("%s: memory count differs", na.Path)
			}
			ma, mb := na.Mems[mi], nb.Mems[mi]
			for j := range ma {
				if j < len(mb) && ma[j] != mb[j] {
					return false, fmt.Sprintf("%s mem %d[%d] differs", na.Path, mi, j)
				}
			}
		}
	}
	return true, ""
}
