package verify

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"livesim/internal/checkpoint"
	"livesim/internal/sim"
)

// mkCp builds a checkpoint whose single node carries value v at cycle c.
func mkCp(c, v uint64) *checkpoint.Checkpoint {
	st := &sim.State{
		Cycle: c,
		Nodes: []sim.NodeState{{Path: "top", ObjKey: "m", Slots: []uint64{v}}},
	}
	store := checkpoint.NewStore()
	return store.Add(st, "v1", 0)
}

// chain builds checkpoints at cycles 0,10,20,... where the recorded value
// follows value(c) — a stand-in for deterministic simulation.
func chain(n int, value func(cycle uint64) uint64) []*checkpoint.Checkpoint {
	cps := make([]*checkpoint.Checkpoint, n)
	for i := range cps {
		c := uint64(i * 10)
		cps[i] = mkCp(c, value(c))
	}
	return cps
}

// replayWith simulates the new code's behaviour: starting from the source
// checkpoint's value, advance to toCycle using step().
func replayWith(step func(cycle, v uint64) uint64) ReplayFn {
	return func(from *checkpoint.Checkpoint, toCycle uint64) (*sim.State, error) {
		v := from.State.Nodes[0].Slots[0]
		for c := from.Cycle; c < toCycle; c++ {
			v = step(c, v)
		}
		return &sim.State{
			Cycle: toCycle,
			Nodes: []sim.NodeState{{Path: "top", ObjKey: "m", Slots: []uint64{v}}},
		}, nil
	}
}

func TestAllConsistent(t *testing.T) {
	// Recorded: value = cycle. Replay: +1 per cycle. Identical behaviour.
	cps := chain(8, func(c uint64) uint64 { return c })
	res, err := Run(cps, replayWith(func(c, v uint64) uint64 { return v + 1 }), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent() {
		t.Fatalf("divergence at %d: %+v", res.FirstDivergence, res.Segments[res.FirstDivergence])
	}
	for i, sr := range res.Segments {
		if sr.Skipped || !sr.Consistent {
			t.Errorf("segment %d: %+v", i, sr)
		}
	}
}

func TestEarliestDivergenceFound(t *testing.T) {
	// Recorded behaviour: +1/cycle. New behaviour: +1 until cycle 35,
	// then +2 — segments covering cycles >= 35 diverge; earliest is
	// segment 3 (30..40).
	cps := chain(8, func(c uint64) uint64 { return c })
	res, err := Run(cps, replayWith(func(c, v uint64) uint64 {
		if c >= 35 {
			return v + 2
		}
		return v + 1
	}), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent() {
		t.Fatal("expected divergence")
	}
	if res.FirstDivergence != 3 {
		t.Errorf("first divergence %d want 3", res.FirstDivergence)
	}
	for i := 0; i < 3; i++ {
		if !res.Segments[i].Consistent {
			t.Errorf("segment %d should be consistent", i)
		}
	}
	if res.Segments[3].Detail == "" {
		t.Error("missing divergence detail")
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	cps := chain(16, func(c uint64) uint64 { return c * 3 })
	step := func(c, v uint64) uint64 {
		if c >= 77 {
			return v + 5
		}
		return v + 3
	}
	serial, err := Run(cps, replayWith(step), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cps, replayWith(step), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.FirstDivergence != parallel.FirstDivergence {
		t.Errorf("serial %d parallel %d", serial.FirstDivergence, parallel.FirstDivergence)
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	cps := chain(4, func(c uint64) uint64 { return c })
	boom := errors.New("boom")
	_, err := Run(cps, func(from *checkpoint.Checkpoint, to uint64) (*sim.State, error) {
		return nil, boom
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestTooFewCheckpoints(t *testing.T) {
	res, err := Run(nil, nil, Options{})
	if err != nil || !res.Consistent() {
		t.Fatalf("%v %v", res, err)
	}
	res, err = Run(chain(1, func(c uint64) uint64 { return c }), nil, Options{})
	if err != nil || !res.Consistent() {
		t.Fatalf("%v %v", res, err)
	}
}

func TestParallelismActuallyUsed(t *testing.T) {
	cps := chain(9, func(c uint64) uint64 { return c })
	var inflight, maxInflight int64
	rendezvous := make(chan struct{})
	var closeOnce int64
	replay := func(from *checkpoint.Checkpoint, to uint64) (*sim.State, error) {
		cur := atomic.AddInt64(&inflight, 1)
		for {
			old := atomic.LoadInt64(&maxInflight)
			if cur <= old || atomic.CompareAndSwapInt64(&maxInflight, old, cur) {
				break
			}
		}
		if cur >= 2 && atomic.CompareAndSwapInt64(&closeOnce, 0, 1) {
			close(rendezvous) // two replays are provably concurrent
		}
		select {
		case <-rendezvous:
		case <-time.After(200 * time.Millisecond):
		}
		atomic.AddInt64(&inflight, -1)
		return replayWith(func(c, v uint64) uint64 { return v + 1 })(from, to)
	}
	res, err := Run(cps, replay, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 {
		t.Errorf("workers %d", res.Workers)
	}
	if atomic.LoadInt64(&maxInflight) < 2 {
		t.Errorf("max inflight %d; expected overlap", maxInflight)
	}
}

func TestStateEqualDetails(t *testing.T) {
	a := &sim.State{Cycle: 1, Nodes: []sim.NodeState{{Path: "top", Slots: []uint64{1, 2}, Mems: [][]uint64{{5}}}}}
	same := &sim.State{Cycle: 1, Nodes: []sim.NodeState{{Path: "top", Slots: []uint64{1, 2}, Mems: [][]uint64{{5}}}}}
	if ok, _ := StateEqual(a, same); !ok {
		t.Error("identical states unequal")
	}
	cases := []*sim.State{
		{Cycle: 2, Nodes: same.Nodes},
		{Cycle: 1, Nodes: []sim.NodeState{}},
		{Cycle: 1, Nodes: []sim.NodeState{{Path: "other", Slots: []uint64{1, 2}, Mems: [][]uint64{{5}}}}},
		{Cycle: 1, Nodes: []sim.NodeState{{Path: "top", Slots: []uint64{1, 3}, Mems: [][]uint64{{5}}}}},
		{Cycle: 1, Nodes: []sim.NodeState{{Path: "top", Slots: []uint64{1, 2}, Mems: [][]uint64{{6}}}}},
		{Cycle: 1, Nodes: []sim.NodeState{{Path: "top", Slots: []uint64{1, 2}, Mems: [][]uint64{{5, 6}}}}},
	}
	for i, b := range cases {
		if ok, detail := StateEqual(a, b); ok || detail == "" {
			t.Errorf("case %d: ok=%v detail=%q", i, ok, detail)
		}
	}
}

func TestRegsEqual(t *testing.T) {
	a := &sim.State{Nodes: []sim.NodeState{{Path: "top", ObjKey: "m", Slots: []uint64{1, 99}}}}
	b := &sim.State{Nodes: []sim.NodeState{{Path: "top", ObjKey: "m", Slots: []uint64{1, 42}}}}
	// Slot 1 is a wire: comparing only reg slot 0 passes.
	if ok, _ := RegsEqual(a, b, map[string][]uint32{"m": {0}}); !ok {
		t.Error("reg-only compare should pass")
	}
	if ok, _ := RegsEqual(a, b, map[string][]uint32{"m": {0, 1}}); ok {
		t.Error("reg compare including slot 1 should fail")
	}
}
