package gateway_test

import (
	"encoding/json"
	"testing"
	"time"

	"livesim/internal/faultinject"
	"livesim/internal/gateway"
	"livesim/internal/server"
)

// The mid-migration fault matrix. Each case kills one side of the
// protocol at its worst moment and asserts the two invariants a live
// migration must never break:
//
//   - the session survives on exactly one backend, and
//   - its fingerprint (accumulator value + cycle report) is
//     bit-identical to the pre-fault state.
//
// The OnMigrateStage seam fires just before each stage, so "at import"
// means "export finished, import not yet sent" — the window where both
// state dirs hold a copy of the journal.

// matrix is the shared scaffolding: two backends, a gateway between
// them, one driven session, and a lookup of who hosts it.
type matrix struct {
	src, dst   *testBackend
	gw         *gateway.Gateway
	gaddr      string
	wantPeek   string
	wantCycle  string
	sourceAddr string
}

func setupMatrix(t *testing.T, cfg *gateway.Config) *matrix {
	t.Helper()
	m := &matrix{src: newTestBackend(t), dst: newTestBackend(t)}
	cfg.Backends = []gateway.BackendSpec{{Addr: m.src.addr()}, {Addr: m.dst.addr()}}
	m.gw, m.gaddr = startGateway(t, *cfg)
	c := dial(t, m.gaddr)
	createTiny(t, c, "f0")
	m.wantPeek, m.wantCycle = drive(t, c, "f0")

	// Normalize: if placement chose what we call dst, swap the labels so
	// src is always the session's home.
	if len(m.src.sessionNames(t)) == 0 {
		m.src, m.dst = m.dst, m.src
	}
	m.sourceAddr = m.src.addr()
	return m
}

// hostsF0 reports whether backend b currently hosts the session.
func hostsF0(t *testing.T, b *testBackend) bool {
	t.Helper()
	for _, n := range b.sessionNames(t) {
		if n == "f0" {
			return true
		}
	}
	return false
}

// assertExactlyOneCopy fails unless f0 lives on exactly one of the two
// backends, and returns which one.
func assertExactlyOneCopy(t *testing.T, m *matrix) *testBackend {
	t.Helper()
	onSrc, onDst := hostsF0(t, m.src), hostsF0(t, m.dst)
	if onSrc == onDst {
		t.Fatalf("copy invariant broken: on source=%v, on target=%v", onSrc, onDst)
	}
	if onSrc {
		return m.src
	}
	return m.dst
}

// TestMigrateSourceCrashAfterExport: the source dies the instant its
// export blob is handed over. The migration must finish anyway — the
// blob is all it needs — and the session's one copy is the target.
// When the crashed source later restarts, its journal resurrects a
// stale copy; the gateway's reconcile sweep must close it.
func TestMigrateSourceCrashAfterExport(t *testing.T) {
	var m *matrix
	cfg := gateway.Config{
		OnMigrateStage: func(session, stage string) {
			if stage == "import" { // export done, import not yet sent
				m.src.halt()
			}
		},
	}
	m = setupMatrix(t, &cfg)
	c := dial(t, m.gaddr)

	resp := mustOK(t, c, &server.Request{Session: "f0", Verb: "migrate"})
	var rep gateway.MigrationReport
	if err := json.Unmarshal(resp.Data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.To != m.dst.addr() {
		t.Errorf("migrated to %s, want %s", rep.To, m.dst.addr())
	}

	if !hostsF0(t, m.dst) {
		t.Fatal("target does not host the session after source crash")
	}
	gotPeek, gotCycle := fingerprint(t, c, "f0")
	if gotPeek != m.wantPeek || gotCycle != m.wantCycle {
		t.Errorf("fingerprint after source crash = (%q, %q), want (%q, %q)",
			gotPeek, gotCycle, m.wantPeek, m.wantCycle)
	}

	// The dead source never saw the tombstone close, so restarting it
	// resurrects a stale copy from its journal. The reconcile sweep
	// (kicked when the health checker sees it return) must close it.
	m.src.restart()
	waitUntil(t, 5*time.Second, "resurrected source copy swept", func() bool {
		return !hostsF0(t, m.src)
	})
	assertExactlyOneCopy(t, m)
	gotPeek, gotCycle = fingerprint(t, c, "f0")
	if gotPeek != m.wantPeek || gotCycle != m.wantCycle {
		t.Errorf("fingerprint after sweep = (%q, %q), want (%q, %q)",
			gotPeek, gotCycle, m.wantPeek, m.wantCycle)
	}
}

// TestMigrateTargetCrashBeforeCommit: the target dies after acking the
// import but before the gateway flips routing. The migration must
// abort toward the source — which never stopped being authoritative —
// and the target's half-adopted copy must be swept when it returns.
func TestMigrateTargetCrashBeforeCommit(t *testing.T) {
	var m *matrix
	cfg := gateway.Config{
		OnMigrateStage: func(session, stage string) {
			if stage == "commit" { // import acked, routing not yet flipped
				m.dst.halt()
			}
		},
	}
	m = setupMatrix(t, &cfg)
	c := dial(t, m.gaddr)

	resp, err := c.Do(&server.Request{Session: "f0", Verb: "migrate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("migration reported success with the target dead at commit")
	}

	// Source still serves, state intact, through the same gateway conn.
	gotPeek, gotCycle := fingerprint(t, c, "f0")
	if gotPeek != m.wantPeek || gotCycle != m.wantCycle {
		t.Errorf("fingerprint after aborted migration = (%q, %q), want (%q, %q)",
			gotPeek, gotCycle, m.wantPeek, m.wantCycle)
	}
	if !hostsF0(t, m.src) {
		t.Fatal("source lost the session after an aborted migration")
	}

	// The target's journal holds the imported copy it acked before
	// dying; on restart that copy resurrects and must be swept (the
	// route stayed pinned to the source).
	m.dst.restart()
	waitUntil(t, 5*time.Second, "orphaned target copy swept", func() bool {
		return !hostsF0(t, m.dst)
	})
	assertExactlyOneCopy(t, m)
	gotPeek, gotCycle = fingerprint(t, c, "f0")
	if gotPeek != m.wantPeek || gotCycle != m.wantCycle {
		t.Errorf("fingerprint after sweep = (%q, %q), want (%q, %q)",
			gotPeek, gotCycle, m.wantPeek, m.wantCycle)
	}
}

// TestMigratePartitionAtImport: the gateway↔target link drops exactly
// when the import would be sent (outcome unknown from the gateway's
// side). The abort path closes the target — idempotent whether or not
// the import landed — so the source remains the one copy, and a later
// retry succeeds.
func TestMigratePartitionAtImport(t *testing.T) {
	plan := faultinject.New().FailMigrateAt("import")
	cfg := gateway.Config{Faults: plan}
	m := setupMatrix(t, &cfg)
	c := dial(t, m.gaddr)

	resp, err := c.Do(&server.Request{Session: "f0", Verb: "migrate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("migration reported success across an injected partition")
	}
	var fired bool
	for _, f := range plan.Fired() {
		if f == "migrate:import" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("injected fault never fired: %v", plan.Fired())
	}

	// Both backends alive: the session must be on the source alone.
	owner := assertExactlyOneCopy(t, m)
	if owner != m.src {
		t.Errorf("session on %s after aborted migration, want source %s", owner.addr(), m.src.addr())
	}
	gotPeek, gotCycle := fingerprint(t, c, "f0")
	if gotPeek != m.wantPeek || gotCycle != m.wantCycle {
		t.Errorf("fingerprint after partition abort = (%q, %q), want (%q, %q)",
			gotPeek, gotCycle, m.wantPeek, m.wantCycle)
	}

	// The fault was one-shot: the same migration now goes through.
	resp = mustOK(t, c, &server.Request{Session: "f0", Verb: "migrate"})
	var rep gateway.MigrationReport
	if err := json.Unmarshal(resp.Data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.To != m.dst.addr() {
		t.Errorf("retried migration landed on %s, want %s", rep.To, m.dst.addr())
	}
}
