package gateway

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"livesim/internal/obs"
	"livesim/internal/server"
)

// Live migration. The protocol is deliberately asymmetric about where
// authority lives at each step:
//
//  1. freeze   — the route stops admitting requests (new ones wait on
//                the freeze latch) and the migration waits for the
//                session's in-flight requests to drain. The freeze
//                window is the client-visible blackout.
//  2. export   — the source watermarks the session and returns the
//                journal+checkpoint transfer blob. Non-destructive:
//                the source remains fully authoritative.
//  3. import   — the target materializes the blob and replays the
//                (empty, post-watermark) journal tail. The session now
//                exists in two places, but the route still points at
//                the source, so only the source can serve it.
//  4. commit   — the gateway flips the route to the target and opens
//                the latch. This single in-memory write is the commit
//                point.
//  5. tombstone— the source's copy is closed with a forwarding
//                address, so clients connected to it directly get a
//                typed `moved` redirect instead of no_session.
//
// Any failure before commit aborts toward the source: the target's
// copy (if any) is closed best-effort, the latch opens, and nothing
// changed. An import whose outcome is unknown (transport death — the
// partition case) is treated the same way: closing the target is
// idempotent whether or not the import landed, so the session provably
// lives on exactly one backend afterwards. Failure after commit (the
// tombstone close) only costs redirect quality, and the reconcile
// sweep repairs it when the source comes back.

// MigrationReport is what one live migration returns (and the
// `migrate` verb's Data payload).
type MigrationReport struct {
	Session    string  `json:"session"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	WALBytes   int64   `json:"wal_bytes"`
	BlackoutMs float64 `json:"blackout_ms"`
	// Replay statistics from the target's import.
	Records  int     `json:"records"`
	Executed int     `json:"executed"`
	FastPath bool    `json:"fast_path"`
	ReplayMs float64 `json:"replay_ms"`
}

// stageCheck runs the test seam and the fault plan for one stage.
func (g *Gateway) stageCheck(session, stage string) error {
	if g.cfg.OnMigrateStage != nil {
		g.cfg.OnMigrateStage(session, stage)
	}
	return g.cfg.Faults.MigrateFault(stage)
}

// Migrate moves one session to targetAddr (empty = rendezvous-pick
// among placeable backends, excluding the current host).
func (g *Gateway) Migrate(session, targetAddr string) (*MigrationReport, error) {
	return g.MigrateTraced(session, targetAddr, "", "")
}

// MigrateTraced is Migrate joined to a wire trace: every stage RPC
// (export, import, verify ping, commit, tombstone) is stamped with it
// and wrapped in a stage span, so `trace <id>` shows where a migration
// spent its blackout. An empty trace mints one — migrations are always
// traced.
func (g *Gateway) MigrateTraced(session, targetAddr, trace, parentSID string) (*MigrationReport, error) {
	g.mu.Lock()
	r := g.routes[session]
	g.mu.Unlock()
	if r == nil {
		return nil, fmt.Errorf("no session %q routed through this gateway", session)
	}
	r.mu.Lock()
	source := r.backend
	r.mu.Unlock()
	if !source.alive() {
		return nil, fmt.Errorf("session %q is on %s, which is down — nothing to export", session, source.addr())
	}

	var target *backend
	if targetAddr != "" {
		target = g.backendByAddr(targetAddr)
		if target == nil {
			return nil, fmt.Errorf("unknown backend %q", targetAddr)
		}
		if !target.alive() {
			return nil, fmt.Errorf("target backend %s is down", targetAddr)
		}
	} else {
		slate := make([]*backend, 0, len(g.backends))
		for _, b := range g.placeableBackends() {
			if b != source {
				slate = append(slate, b)
			}
		}
		target = rendezvousPick(session, slate)
		if target == nil {
			return nil, fmt.Errorf("no placeable backend to migrate %q to", session)
		}
	}
	if target == source {
		return nil, fmt.Errorf("session %q is already on %s", session, target.addr())
	}

	if trace == "" {
		trace = obs.NewTraceID()
	}
	msp := g.tracer.StartRemote(trace, parentSID, "migrate",
		obs.Str("session", session), obs.Str("from", source.addr()), obs.Str("to", target.addr()))
	rep, err := g.migrateFrozen(r, session, source, target, trace, msp)
	msp.Annotate(obs.Bool("ok", err == nil))
	msp.End()
	if err != nil {
		g.reg.Counter("gateway_migration_failures").Inc()
		g.eventT("migrate_failed", session, trace,
			fmt.Sprintf("%s -> %s: %v", source.addr(), target.addr(), err))
		g.log.Warn("migration failed", obs.Str("session", session), obs.Str("trace", trace),
			obs.Str("from", source.addr()), obs.Str("to", target.addr()), obs.Str("err", err.Error()))
		return nil, err
	}
	g.reg.Counter("gateway_migrations").Inc()
	g.reg.Histogram("gateway_migration_blackout_seconds", nil).Observe(rep.BlackoutMs / 1e3)
	g.eventT("migrated", session, trace,
		fmt.Sprintf("%s -> %s in %.1fms (%dB journal, fast_path=%v)",
			rep.From, rep.To, rep.BlackoutMs, rep.WALBytes, rep.FastPath))
	return rep, nil
}

// freeze latches the route shut and waits for in-flight requests to
// drain. Returns an unfreeze closure; exactly one of commit/abort
// paths must call it.
func (r *route) freeze(timeout time.Duration) (unfreeze func(commitTo *backend), err error) {
	r.mu.Lock()
	if r.migrating {
		r.mu.Unlock()
		return nil, fmt.Errorf("migration already in progress")
	}
	r.migrating = true
	r.unfrozen = make(chan struct{})
	var idle chan struct{}
	if r.inflight > 0 {
		idle = make(chan struct{})
		r.idle = idle
	}
	r.mu.Unlock()

	unfreeze = func(commitTo *backend) {
		r.mu.Lock()
		if commitTo != nil {
			r.backend = commitTo
			r.pinned = true
		}
		r.migrating = false
		close(r.unfrozen)
		r.unfrozen = nil
		if r.idle != nil { // drain waiter never consumed it
			close(r.idle)
			r.idle = nil
		}
		r.mu.Unlock()
	}

	if idle != nil {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case <-idle:
		case <-timer.C:
			unfreeze(nil)
			return nil, fmt.Errorf("in-flight requests did not drain within %v", timeout)
		}
	}
	return unfreeze, nil
}

func (g *Gateway) migrateFrozen(r *route, session string, source, target *backend, trace string, msp *obs.Span) (*MigrationReport, error) {
	t0 := time.Now()
	unfreeze, err := r.freeze(g.cfg.MigrateTimeout)
	if err != nil {
		return nil, err
	}

	// abortToSource: close whatever the target may hold (idempotent —
	// a no_session answer just means the import never landed) and open
	// the latch with the source still authoritative.
	abortToSource := func(targetMayHold bool) {
		if targetMayHold {
			g.forward(target, &server.Request{Session: session, Verb: "close",
				TraceID: trace, ParentSpan: msp.SID()})
		}
		unfreeze(nil)
	}
	// stage wraps one migration stage in a span so the assembled trace
	// shows where the blackout went.
	stage := func(name string, b *backend, fn func(psid string) *server.Response) *server.Response {
		sp := msp.Child(name, obs.Str("backend", b.addr()))
		resp := fn(sp.SID())
		sp.Annotate(obs.Bool("ok", resp.OK))
		sp.End()
		return resp
	}

	if err := g.stageCheck(session, "export"); err != nil {
		abortToSource(false)
		return nil, err
	}
	exResp := stage("migrate_export", source, func(psid string) *server.Response {
		return g.forward(source, &server.Request{Session: session, Verb: "export",
			TraceID: trace, ParentSpan: psid})
	})
	if !exResp.OK {
		abortToSource(false)
		return nil, fmt.Errorf("export on %s: %s (%s)", source.addr(), exResp.Error, exResp.Code)
	}
	var ed server.ExportData
	if err := json.Unmarshal(exResp.Data, &ed); err != nil {
		abortToSource(false)
		return nil, fmt.Errorf("export data: %w", err)
	}

	if err := g.stageCheck(session, "import"); err != nil {
		abortToSource(true)
		return nil, err
	}
	imResp := stage("migrate_import", target, func(psid string) *server.Response {
		return g.forward(target, &server.Request{Session: session, Verb: "import", Blob: ed.Blob,
			TraceID: trace, ParentSpan: psid})
	})
	if !imResp.OK {
		// Includes the unknown-outcome transport case (CodeUnavailable):
		// the close below settles it to zero copies on the target either
		// way, so the source stays the one copy.
		abortToSource(true)
		return nil, fmt.Errorf("import on %s: %s (%s)", target.addr(), imResp.Error, imResp.Code)
	}
	var id server.ImportData
	json.Unmarshal(imResp.Data, &id)

	if err := g.stageCheck(session, "commit"); err != nil {
		abortToSource(true)
		return nil, err
	}
	// Verify the target still stands before flipping: an import ack
	// followed by a target crash is the one window where committing
	// would route to a corpse while the source can still serve. The
	// target's journal holds the acked copy, so the abort leaves it as
	// a resurrection for the reconcile sweep, not lost data.
	vr := stage("migrate_verify_target", target, func(psid string) *server.Response {
		return g.forward(target, &server.Request{Verb: "ping", TraceID: trace, ParentSpan: psid})
	})
	if !vr.OK {
		abortToSource(true)
		return nil, fmt.Errorf("target %s vanished before commit: %s", target.addr(), vr.Error)
	}
	unfreeze(target) // the commit point
	blackout := time.Since(t0)

	// Post-commit, best effort: leave a forwarding tombstone on the
	// source. A dead source just means no redirect until the reconcile
	// sweep closes its resurrected copy when it returns.
	tomb := stage("migrate_tombstone", source, func(psid string) *server.Response {
		return g.forward(source, &server.Request{Session: session, Verb: "close",
			Args: []string{"moved", target.addr()}, TraceID: trace, ParentSpan: psid})
	})
	if !tomb.OK {
		g.eventT("tombstone_failed", session, trace,
			fmt.Sprintf("source %s: %s (%s)", source.addr(), tomb.Error, tomb.Code))
	}

	return &MigrationReport{
		Session: session, From: source.addr(), To: target.addr(),
		WALBytes: ed.WALBytes, BlackoutMs: float64(blackout.Microseconds()) / 1e3,
		Records: id.Records, Executed: id.Executed, FastPath: id.FastPath, ReplayMs: id.ReplayMs,
	}, nil
}

// DrainBackendReport is what draining a backend returns (and the
// gateway `drain` verb's Data payload).
type DrainBackendReport struct {
	Backend  string             `json:"backend"`
	Migrated []*MigrationReport `json:"migrated"`
	Failed   map[string]string  `json:"failed,omitempty"`
	// DrainSent: every session left, so the backend was told to drain
	// (it checkpoints and the host process exits, same as SIGTERM).
	DrainSent bool `json:"drain_sent"`
}

// DrainBackend empties a backend for maintenance: exclude it from
// placement, migrate every hosted session off — cheapest journal
// first, so most sessions are safe early if the budget runs out — and
// only when none remain, send the wire `drain` that makes the host
// process run its SIGTERM path.
func (g *Gateway) DrainBackend(addr string) (*DrainBackendReport, error) {
	return g.drainBackendTraced(addr, "", "")
}

// drainBackendTraced runs the drain under one trace: the inventory, every
// per-session migration, and the final wire drain all parent under a
// drain_backend span, so `trace <id>` reads as the whole operation.
func (g *Gateway) drainBackendTraced(addr, trace, parentSID string) (*DrainBackendReport, error) {
	b := g.backendByAddr(addr)
	if b == nil {
		return nil, fmt.Errorf("unknown backend %q", addr)
	}
	if !b.alive() {
		return nil, fmt.Errorf("backend %s is down", addr)
	}
	if trace == "" {
		trace = obs.NewTraceID()
	}
	dsp := g.tracer.StartRemote(trace, parentSID, "drain_backend", obs.Str("backend", addr))
	defer dsp.End()
	b.noPlace.Store(true)
	rep := &DrainBackendReport{Backend: addr, Failed: map[string]string{}}

	// Inventory from the backend itself — routes can lag reality.
	invResp := g.forward(b, &server.Request{Verb: "sessions", TraceID: trace, ParentSpan: dsp.SID()})
	if !invResp.OK {
		return nil, fmt.Errorf("sessions on %s: %s", addr, invResp.Error)
	}
	var infos []server.SessionInfo
	if invResp.Data != nil {
		json.Unmarshal(invResp.Data, &infos)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].WALBytes < infos[j].WALBytes })

	for _, info := range infos {
		g.mu.Lock()
		if g.routes[info.Name] == nil {
			g.routes[info.Name] = &route{backend: b}
		}
		g.mu.Unlock()
		m, err := g.MigrateTraced(info.Name, "", trace, dsp.SID())
		if err != nil {
			rep.Failed[info.Name] = err.Error()
			continue
		}
		rep.Migrated = append(rep.Migrated, m)
	}

	if len(rep.Failed) == 0 {
		dr := g.forward(b, &server.Request{Verb: "drain", TraceID: trace, ParentSpan: dsp.SID()})
		rep.DrainSent = dr.OK
		if dr.OK {
			g.eventT("backend_drained", "", trace, addr+": all sessions migrated, drain sent")
		}
	}
	return rep, nil
}
