package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"livesim/internal/obs"
	"livesim/internal/server"
)

// Fleet-wide trace assembly and the gateway's crash forensics. One
// trace id names spans scattered across processes: the gateway's
// request/forward spans live in its own span store, each backend's
// request/exec/live-loop spans in that backend's, and a replication
// standby's replapply spans in a third. `trace <id>` (and /tracez?id=)
// fans an unstamped `spans` query to every backend, merges the dumps
// with the local store, and renders one tree — spans whose parent died
// with a backend surface as explicit orphan roots, and unreachable
// backends are listed as incomplete-assembly notes rather than errors.

// isTraceID reports whether s looks like a wire trace id (16 lowercase
// hex characters, the obs.NewTraceID shape) — how the gateway tells the
// fleet `trace <id>` verb from the session-scoped VCD `trace` verb.
func isTraceID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// TraceAssembly is the assembled fleet view of one trace: every span
// collected for it, plus a note per backend whose spans could not be
// collected (down, unreachable, or store disabled) — the explicit
// "parts of this tree may be missing" marker.
type TraceAssembly struct {
	Trace   string           `json:"trace"`
	Spans   []obs.SpanRecord `json:"spans"`
	Missing []string         `json:"missing,omitempty"`
}

// assembleTrace collects one trace's spans from the whole fleet: an
// unstamped `spans <id>` to every alive backend (unstamped on purpose —
// the assembly query must not add forward spans to the very stores it
// is reading), merged with the gateway's own store.
func (g *Gateway) assembleTrace(id string) *TraceAssembly {
	asm := &TraceAssembly{Trace: id}
	// Partition first: the down-backend notes are appended before any
	// goroutine is spawned, so every append to asm after this point
	// happens under mu.
	var alive []*backend
	for _, b := range g.backends {
		if b.alive() {
			alive = append(alive, b)
		} else {
			asm.Missing = append(asm.Missing,
				fmt.Sprintf("backend %s is down; any spans it held are not shown", b.addr()))
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range alive {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			resp := g.forward(b, &server.Request{Verb: "spans", Args: []string{id}})
			mu.Lock()
			defer mu.Unlock()
			if !resp.OK {
				asm.Missing = append(asm.Missing,
					fmt.Sprintf("backend %s: %s (%s)", b.addr(), resp.Error, resp.Code))
				return
			}
			var dump server.SpanDump
			if resp.Data == nil || json.Unmarshal(resp.Data, &dump) != nil {
				asm.Missing = append(asm.Missing,
					fmt.Sprintf("backend %s: unparseable span dump", b.addr()))
				return
			}
			asm.Spans = append(asm.Spans, dump.Spans...)
		}(b)
	}
	wg.Wait()
	asm.Spans = append(asm.Spans, g.store.Query(id)...)
	sort.Strings(asm.Missing)
	return asm
}

// renderAssembly writes the human form: a header, the span tree (with
// per-hop deltas and orphan markers from obs.WriteSpanTree), then the
// incomplete-assembly notes.
func renderAssembly(w *strings.Builder, asm *TraceAssembly) {
	if len(asm.Spans) == 0 {
		fmt.Fprintf(w, "no spans stored anywhere for trace %s\n", asm.Trace)
	} else {
		procs := map[string]bool{}
		for _, s := range asm.Spans {
			procs[s.Proc] = true
		}
		fmt.Fprintf(w, "trace %s: %d spans across %d processes\n",
			asm.Trace, len(asm.Spans), len(procs))
		obs.WriteSpanTree(w, obs.BuildSpanTree(asm.Spans))
	}
	for _, n := range asm.Missing {
		fmt.Fprintf(w, "  ! incomplete: %s\n", n)
	}
}

// traceVerb is the fleet assembly verb: `trace <id>` returns one
// assembled tree (Data: TraceAssembly), bare `trace` returns the trace
// index aggregated across the gateway and every alive backend.
func (g *Gateway) traceVerb(req *server.Request) *server.Response {
	if len(req.Args) > 1 {
		return gerr(req, server.CodeBadRequest, fmt.Errorf("usage: trace [trace-id]"))
	}
	if len(req.Args) == 1 {
		asm := g.assembleTrace(req.Args[0])
		data, _ := json.Marshal(asm)
		var out strings.Builder
		renderAssembly(&out, asm)
		return &server.Response{ID: req.ID, OK: true, Output: out.String(), Data: data}
	}

	// Index: this gateway's stored traces plus each backend's, labeled
	// by process so an operator knows where to look deeper.
	type procIndex struct {
		Proc   string             `json:"proc"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	idx := []procIndex{{Proc: g.cfg.ProcName, Traces: g.store.Traces(64)}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range g.aliveBackends() {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			resp := g.forward(b, &server.Request{Verb: "spans"})
			if !resp.OK || resp.Data == nil {
				return
			}
			var sums []obs.TraceSummary
			if json.Unmarshal(resp.Data, &sums) != nil {
				return
			}
			mu.Lock()
			idx = append(idx, procIndex{Proc: b.addr(), Traces: sums})
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	sort.Slice(idx[1:], func(i, j int) bool { return idx[i+1].Proc < idx[j+1].Proc })
	data, _ := json.Marshal(idx)
	var out strings.Builder
	for _, pi := range idx {
		fmt.Fprintf(&out, "%s:\n", pi.Proc)
		if len(pi.Traces) == 0 {
			out.WriteString("  (no traces stored)\n")
			continue
		}
		for _, t := range pi.Traces {
			state := "active"
			if t.Done {
				state = "done"
			}
			fmt.Fprintf(&out, "  %-16s %-20s %4d spans %10s ok=%-5v %s\n",
				t.Trace, t.Root, t.Spans, time.Duration(t.DurUS)*time.Microsecond, t.OK, state)
		}
	}
	return &server.Response{ID: req.ID, OK: true, Output: out.String(), Data: data}
}

// HandleTracez is the gateway's /tracez admin endpoint: the local trace
// index without ?id=, the fleet-assembled TraceAssembly for ?id=<trace>
// (add &render=text for the tree instead of JSON).
func (g *Gateway) HandleTracez(w http.ResponseWriter, r *http.Request) {
	if g.store == nil {
		http.Error(w, "span store disabled", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		body, _ := json.Marshal(g.store.Traces(64))
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
		return
	}
	asm := g.assembleTrace(id)
	if r.URL.Query().Get("render") == "text" {
		var out strings.Builder
		renderAssembly(&out, asm)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(out.String()))
		return
	}
	body, _ := json.Marshal(asm)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// HandleFlightz is the gateway's /flightz admin endpoint: the flight
// recorder ring as NDJSON, exactly as a blackbox dump would write it.
func (g *Gateway) HandleFlightz(w http.ResponseWriter, r *http.Request) {
	if g.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	g.flight.Dump(w, "flightz")
}

// eventT records one lifecycle event in the ring (trace-stamped), the
// log, and the flight recorder — so the black box holds the event
// timeline interleaved with the spans.
func (g *Gateway) eventT(typ, session, trace, msg string) {
	g.events.AddT(typ, session, trace, msg)
	g.flight.Note(typ, session, trace, msg)
}

// blackbox records an abnormal event and dumps the flight recorder to
// BlackboxDir (rate-limited to one dump per second). Gateway callers:
// panic recovery; the periodic flusher covers everything it can't see.
func (g *Gateway) blackbox(reason, session, trace, msg string) {
	g.eventT(reason, session, trace, msg)
	if g.flight == nil || g.cfg.BlackboxDir == "" {
		return
	}
	now := time.Now()
	last := g.blackboxTS.Load()
	if now.UnixNano()-last < int64(time.Second) || !g.blackboxTS.CompareAndSwap(last, now.UnixNano()) {
		return
	}
	path := obs.BlackboxPath(g.cfg.BlackboxDir, now)
	if err := g.flight.DumpToFile(path, reason); err != nil {
		g.log.Error("blackbox dump failed", obs.Str("err", err.Error()), obs.Str("path", path))
		return
	}
	g.reg.Counter("gateway_blackbox_dumps").Inc()
	g.log.Warn("blackbox dumped", obs.Str("reason", reason), obs.Str("path", path))
}

// blackboxFlusher periodically rewrites this boot's blackbox file while
// the ring is dirty — the record that survives a SIGKILL. Stops when
// Shutdown closes g.stop.
func (g *Gateway) blackboxFlusher() {
	tick := time.NewTicker(g.cfg.BlackboxFlushEvery)
	defer tick.Stop()
	var flushed uint64
	flush := func() {
		if w := g.flight.Writes(); w != flushed {
			if err := g.flight.DumpToFile(g.bootBlackbox, "periodic"); err == nil {
				flushed = w
			}
		}
	}
	// Write immediately so the file exists from boot — an early SIGKILL
	// must still leave an (empty but parseable) black box behind.
	g.flight.DumpToFile(g.bootBlackbox, "periodic")
	for {
		select {
		case <-g.stop:
			flush()
			return
		case <-tick.C:
			flush()
		}
	}
}
