package gateway

import (
	"hash/fnv"
	"sort"
)

// Placement is rendezvous (highest-random-weight) hashing: every
// (backend, session) pair gets a stable pseudo-random score and the
// session lands on the highest-scoring eligible backend. The property
// that matters for a fleet is minimal disruption — when a backend
// joins or leaves, only the sessions whose top choice changed move,
// unlike modulo hashing where almost everything reshuffles. No state
// to replicate either: any gateway (or a restarted one) computes the
// same placement from the same backend list.

// rendezvousScore is the weight of placing session on the backend at
// addr. FNV-1a over addr NUL session — the separator keeps
// ("ab","c") and ("a","bc") from colliding.
func rendezvousScore(addr, session string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{0})
	h.Write([]byte(session))
	return h.Sum64()
}

// rendezvousPick returns the highest-scoring backend for session, or
// nil when the slate is empty.
func rendezvousPick(session string, backends []*backend) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range backends {
		if s := rendezvousScore(b.addr(), session); best == nil || s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// rendezvousOrder returns backends sorted by descending score for
// session — the preference order a lookup sweep should probe in, so
// misses check the session's most likely home first.
func rendezvousOrder(session string, backends []*backend) []*backend {
	out := append([]*backend(nil), backends...)
	sort.SliceStable(out, func(i, j int) bool {
		return rendezvousScore(out[i].addr(), session) > rendezvousScore(out[j].addr(), session)
	})
	return out
}
