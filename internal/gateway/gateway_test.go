package gateway_test

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"livesim/internal/gateway"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

const tinyDesign = `
module accum (input clk, input en, input [15:0] d, output reg [31:0] total);
  always @(posedge clk) begin
    if (en) total <= total + d;
  end
endmodule

module top (input clk, input en, input [15:0] d, output [31:0] total);
  accum u0 (.clk(clk), .en(en), .d(d), .total(total));
endmodule
`

// testBackend is one restartable in-process livesimd: Halt() leaves
// the state dir as a SIGKILL would, restart() recovers from it on the
// same socket — the crash half of every fault-matrix test.
type testBackend struct {
	t         *testing.T
	dir, sock string
	srv       *server.Server
}

func newTestBackend(t *testing.T) *testBackend {
	t.Helper()
	dir, err := os.MkdirTemp("", "lsgw") // short path: unix sockets cap ~104 bytes
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	b := &testBackend{t: t, dir: filepath.Join(dir, "state"), sock: filepath.Join(dir, "d.sock")}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	b.start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.srv.Shutdown(ctx) // after Halt this is a tolerated no-op
	})
	return b
}

func (b *testBackend) addr() string { return "unix:" + b.sock }

// start boots a server on the backend's state dir: WALSyncEvery -1
// means every acked mutation is fsynced, so anything a test observed
// as committed must survive Halt+restart bit-identically.
func (b *testBackend) start() {
	b.t.Helper()
	srv := server.New(server.Config{StateDir: b.dir, WALSyncEvery: -1})
	if err := srv.Recover(); err != nil {
		b.t.Fatal(err)
	}
	srv.WaitRecovered()
	ln, err := net.Listen("unix", b.sock)
	if err != nil {
		b.t.Fatal(err)
	}
	go srv.Serve(ln)
	b.srv = srv
}

func (b *testBackend) halt()    { b.srv.Halt() }
func (b *testBackend) restart() { b.start() }

// sessionNames lists what the backend itself hosts, bypassing the
// gateway — the ground truth the exactly-one-copy assertions use.
func (b *testBackend) sessionNames(t *testing.T) []string {
	t.Helper()
	c, err := client.Dial(b.addr())
	if err != nil {
		t.Fatalf("dial %s: %v", b.addr(), err)
	}
	defer c.Close()
	resp, err := c.Do(&server.Request{Verb: "sessions"})
	if err != nil || !resp.OK {
		t.Fatalf("sessions on %s: %+v err=%v", b.addr(), resp, err)
	}
	var infos []server.SessionInfo
	if resp.Data != nil {
		json.Unmarshal(resp.Data, &infos)
	}
	names := make([]string, 0, len(infos))
	for _, info := range infos {
		names = append(names, info.Name)
	}
	return names
}

func startGateway(t *testing.T, cfg gateway.Config) (*gateway.Gateway, string) {
	t.Helper()
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 50 * time.Millisecond
	}
	g, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "lsgw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "g.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		g.Shutdown(ctx)
	})
	return g, "unix:" + sock
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustOK(t *testing.T, c *client.Client, req *server.Request) *server.Response {
	t.Helper()
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("%s %v: %v", req.Verb, req.Args, err)
	}
	if !resp.OK {
		t.Fatalf("%s %v: %s (%s)", req.Verb, req.Args, resp.Error, resp.Code)
	}
	return resp
}

func createTiny(t *testing.T, c *client.Client, name string) {
	t.Helper()
	mustOK(t, c, &server.Request{Session: name, Verb: "create",
		Files: map[string]string{"top.v": tinyDesign}, Top: "top", CheckpointEvery: 25})
	mustOK(t, c, &server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}})
}

// drive advances a session to a known state and returns its
// fingerprint: the accumulator value and the cycle report.
func drive(t *testing.T, c *client.Client, name string) (peek, cycle string) {
	t.Helper()
	mustOK(t, c, &server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.en", "1"}})
	mustOK(t, c, &server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.d", "7"}})
	mustOK(t, c, &server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "50"}})
	return fingerprint(t, c, name)
}

// fingerprint reads the session's observable state without mutating it.
func fingerprint(t *testing.T, c *client.Client, name string) (peek, cycle string) {
	t.Helper()
	peek = mustOK(t, c, &server.Request{Session: name, Verb: "peek", Args: []string{"p0", "top.u0.total"}}).Output
	cycle = mustOK(t, c, &server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}}).Output
	return peek, cycle
}

func waitUntil(t *testing.T, d time.Duration, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGatewayPlacementAndAggregation: sessions created through the
// gateway land on pool backends and stay fully usable; `backends` and
// the aggregated `sessions` see all of them; sessions created behind
// the gateway's back are found by the lookup sweep.
func TestGatewayPlacementAndAggregation(t *testing.T) {
	b0, b1, b2 := newTestBackend(t), newTestBackend(t), newTestBackend(t)
	_, gaddr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()}, {Addr: b2.addr()},
	}})
	c := dial(t, gaddr)

	names := []string{"g0", "g1", "g2", "g3", "g4", "g5"}
	for _, name := range names {
		createTiny(t, c, name)
		drive(t, c, name)
	}

	// The pool hosts all of them, exactly once each.
	hosted := map[string]int{}
	for _, b := range []*testBackend{b0, b1, b2} {
		for _, n := range b.sessionNames(t) {
			hosted[n]++
		}
	}
	for _, name := range names {
		if hosted[name] != 1 {
			t.Errorf("session %s hosted %d times, want exactly 1", name, hosted[name])
		}
	}

	// backends verb: route counts sum to the session count.
	var infos []gateway.BackendInfo
	resp := mustOK(t, c, &server.Request{Verb: "backends"})
	if err := json.Unmarshal(resp.Data, &infos); err != nil {
		t.Fatal(err)
	}
	routes := 0
	for _, info := range infos {
		routes += info.Routes
		if info.State != "ok" {
			t.Errorf("backend %s state = %s, want ok", info.Addr, info.State)
		}
	}
	if routes != len(names) {
		t.Errorf("route count = %d, want %d", routes, len(names))
	}

	// Aggregated sessions: every row tagged with its backend.
	var rows []gateway.FleetSessionInfo
	resp = mustOK(t, c, &server.Request{Verb: "sessions"})
	if err := json.Unmarshal(resp.Data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(names) {
		t.Fatalf("aggregated sessions = %d rows, want %d: %+v", len(rows), len(names), rows)
	}
	for _, row := range rows {
		if row.Backend == "" || row.WALBytes == 0 {
			t.Errorf("aggregated row missing backend/wal_bytes: %+v", row)
		}
	}

	// A session the gateway never placed is still found by the sweep.
	direct := dial(t, b1.addr())
	createTiny(t, direct, "stray")
	if out := mustOK(t, c, &server.Request{Session: "stray", Verb: "cycle", Args: []string{"p0"}}).Output; out == "" {
		t.Error("sweep-found session returned empty cycle output")
	}

	// subscribe needs a direct backend connection.
	if resp, _ := c.Do(&server.Request{Verb: "subscribe"}); resp.OK || resp.Code != server.CodeBadRequest {
		t.Errorf("subscribe through gateway = %+v, want bad_request", resp)
	}
}

// TestGatewayRerouteOnBackendCrash: killing the backend under a
// session yields typed unavailable (with a retry hint), and once the
// backend recovers from its journal the same gateway connection serves
// the session again with no committed mutation lost.
func TestGatewayRerouteOnBackendCrash(t *testing.T) {
	b0, b1 := newTestBackend(t), newTestBackend(t)
	backends := []*testBackend{b0, b1}
	_, gaddr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()},
	}})
	c := dial(t, gaddr)

	createTiny(t, c, "c0")
	wantPeek, wantCycle := drive(t, c, "c0")

	var owner *testBackend
	for _, b := range backends {
		for _, n := range b.sessionNames(t) {
			if n == "c0" {
				owner = b
			}
		}
	}
	if owner == nil {
		t.Fatal("no backend hosts c0")
	}
	owner.halt()

	resp, err := c.Do(&server.Request{Session: "c0", Verb: "cycle", Args: []string{"p0"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != server.CodeUnavailable || resp.RetryAfterMs < 1 {
		t.Fatalf("request against dead backend = %+v, want unavailable with retry hint", resp)
	}

	owner.restart()
	waitUntil(t, 5*time.Second, "session served again after restart", func() bool {
		r, err := c.Do(&server.Request{Session: "c0", Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		return err == nil && r.OK
	})
	gotPeek, gotCycle := fingerprint(t, c, "c0")
	if gotPeek != wantPeek || gotCycle != wantCycle {
		t.Errorf("state after crash+recover = (%q, %q), want (%q, %q)", gotPeek, gotCycle, wantPeek, wantCycle)
	}
}

// TestGatewayMigrationMovesLiveSession: the migrate verb moves a
// session between backends with an identical fingerprint, the fast
// replay path, and a working moved tombstone on the source.
func TestGatewayMigrationMovesLiveSession(t *testing.T) {
	b0, b1 := newTestBackend(t), newTestBackend(t)
	backends := []*testBackend{b0, b1}
	_, gaddr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()},
	}})
	c := dial(t, gaddr)

	createTiny(t, c, "m0")
	wantPeek, wantCycle := drive(t, c, "m0")

	resp := mustOK(t, c, &server.Request{Session: "m0", Verb: "migrate"})
	var rep gateway.MigrationReport
	if err := json.Unmarshal(resp.Data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.From == rep.To || rep.WALBytes == 0 || !rep.FastPath {
		t.Errorf("migration report = %+v, want distinct backends, journal bytes, fast path", rep)
	}

	gotPeek, gotCycle := fingerprint(t, c, "m0")
	if gotPeek != wantPeek || gotCycle != wantCycle {
		t.Errorf("state after migration = (%q, %q), want (%q, %q)", gotPeek, gotCycle, wantPeek, wantCycle)
	}
	// Still live: mutations keep working through the same gateway conn.
	mustOK(t, c, &server.Request{Session: "m0", Verb: "run", Args: []string{"clock", "p0", "10"}})

	// Exactly one copy, on the migration target.
	for _, b := range backends {
		hosts := false
		for _, n := range b.sessionNames(t) {
			if n == "m0" {
				hosts = true
			}
		}
		if want := b.addr() == rep.To; hosts != want {
			t.Errorf("backend %s hosts m0 = %v, want %v", b.addr(), hosts, want)
		}
	}

	// The source answers direct clients with a typed redirect.
	var source *testBackend
	for _, b := range backends {
		if b.addr() == rep.From {
			source = b
		}
	}
	direct := dial(t, source.addr())
	moved, err := direct.Do(&server.Request{Session: "m0", Verb: "cycle", Args: []string{"p0"}})
	if err != nil {
		t.Fatal(err)
	}
	if moved.OK || moved.Code != server.CodeMoved || moved.MovedTo != rep.To {
		t.Errorf("source response after migration = %+v, want moved to %s", moved, rep.To)
	}
}

// TestGatewayDrainBackend: draining migrates every session off
// (cheapest journal first), fires the backend's DrainRequested signal,
// and excludes the backend from future placement.
func TestGatewayDrainBackend(t *testing.T) {
	b0, b1 := newTestBackend(t), newTestBackend(t)
	backends := []*testBackend{b0, b1}
	_, gaddr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()},
	}})
	c := dial(t, gaddr)

	names := []string{"d0", "d1", "d2", "d3"}
	for _, name := range names {
		createTiny(t, c, name)
		drive(t, c, name)
	}

	// Drain whichever backend got at least one session.
	var victim, survivor *testBackend
	for i, b := range backends {
		if len(b.sessionNames(t)) > 0 {
			victim, survivor = b, backends[1-i]
			break
		}
	}
	moving := len(victim.sessionNames(t))

	resp := mustOK(t, c, &server.Request{Verb: "drain", Args: []string{victim.addr()}})
	var rep gateway.DrainBackendReport
	if err := json.Unmarshal(resp.Data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrated) != moving || len(rep.Failed) != 0 || !rep.DrainSent {
		t.Fatalf("drain report = %+v, want %d migrated, none failed, drain sent", rep, moving)
	}
	select {
	case <-victim.srv.DrainRequested():
	case <-time.After(2 * time.Second):
		t.Fatal("drain verb never reached the backend")
	}
	if left := victim.sessionNames(t); len(left) != 0 {
		t.Fatalf("drained backend still hosts %v", left)
	}

	// Every session still serves through the gateway.
	for _, name := range names {
		mustOK(t, c, &server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "5"}})
	}

	// New sessions avoid the drained backend.
	createTiny(t, c, "post-drain")
	found := false
	for _, n := range survivor.sessionNames(t) {
		if n == "post-drain" {
			found = true
		}
	}
	if !found {
		t.Error("post-drain create did not land on the surviving backend")
	}
}
