package gateway

import (
	"encoding/json"
	"fmt"
	"time"

	"livesim/internal/obs"
	"livesim/internal/replica"
	"livesim/internal/server"
)

// Failover. When replication is armed (Config.Replicate), every session
// the gateway places gets a standby: the rendezvous next-best backend,
// seeded by the primary over the `replicate` verb and kept hot by the
// primary's ship-on-commit stream. The health loop then runs a failover
// sweep: a primary that stays down past FailoverGrace has its routes
// promoted — the standby is told `promote`, which journals a new fencing
// epoch, and the route retargets under that epoch. The epoch is what
// makes this safe against the classic split-brain: the gateway stamps it
// on every forwarded mutation, so a resurrected old primary (which still
// holds the older epoch) fences itself on first contact, and its shipped
// batches are rejected by the promoted copy the same way.

// armReplication picks the session's standby (rendezvous next-best,
// skipping the primary) and tells the primary to seed and stream to it.
// Degrades gracefully: a session without a standby is exactly as
// durable as it was before this feature existed.
func (g *Gateway) armReplication(session string, primary *backend, trace, parentSID string) {
	var standby *backend
	for _, cand := range rendezvousOrder(session, g.placeableBackends()) {
		if cand != primary {
			standby = cand
			break
		}
	}
	if standby == nil {
		g.eventT("replication_unarmed", session, trace, "no standby backend available")
		return
	}
	if trace == "" {
		trace = obs.NewTraceID()
	}
	asp := g.tracer.StartRemote(trace, parentSID, "replicate_arm",
		obs.Str("session", session), obs.Str("standby", standby.addr()))
	defer asp.End()
	resp := g.forward(primary, &server.Request{Session: session, Verb: "replicate",
		Args: []string{standby.addr()}, TraceID: trace, ParentSpan: asp.SID()})
	if !resp.OK {
		g.reg.Counter("gateway_replication_arm_failures").Inc()
		g.eventT("replication_arm_failed", session, trace,
			fmt.Sprintf("%s -> %s: %s (%s)", primary.addr(), standby.addr(), resp.Error, resp.Code))
		return
	}
	g.mu.Lock()
	if r := g.routes[session]; r != nil {
		r.mu.Lock()
		if r.backend == primary {
			r.replica = standby
		}
		r.mu.Unlock()
	}
	g.mu.Unlock()
	g.reg.Counter("gateway_replications_armed").Inc()
	g.eventT("replication_armed", session, trace, primary.addr()+" -> "+standby.addr())
}

// failoverSweep runs on the health loop after each probe pass: any
// route whose primary has been down past the grace window and whose
// standby is alive gets failed over. The grace window is what separates
// a blip (probe timeout, restart-in-progress) from an outage worth
// burning an epoch on.
func (g *Gateway) failoverSweep() {
	now := time.Now()
	type cand struct {
		name    string
		r       *route
		standby *backend
	}
	var cands []cand
	g.mu.Lock()
	for name, r := range g.routes {
		r.mu.Lock()
		b, standby, migrating := r.backend, r.replica, r.migrating
		r.mu.Unlock()
		if migrating || standby == nil || !standby.alive() || b.getState() != bsDown {
			continue
		}
		ds := b.downSince.Load()
		if ds == 0 || now.Sub(time.Unix(0, ds)) < g.cfg.FailoverGrace {
			continue
		}
		cands = append(cands, cand{name, r, standby})
	}
	g.mu.Unlock()
	for _, c := range cands {
		g.failover(c.name, c.r, c.standby)
	}
}

// failover promotes one session's standby and retargets the route. The
// promote carries no explicit epoch — the standby bumps its own journal
// epoch, which is authoritative (the gateway's view can lag a restart) —
// and the ack's epoch becomes the stamp forwarded mutations carry.
func (g *Gateway) failover(name string, r *route, standby *backend) {
	r.mu.Lock()
	epoch := r.epoch
	dead := r.backend
	r.mu.Unlock()

	// Failovers are health-loop-initiated — there is no client request to
	// inherit a trace from — so each mints its own, and the promote RPC
	// carries it: the standby's promote span joins this tree.
	trace := obs.NewTraceID()
	fsp := g.tracer.StartRemote(trace, "", "failover",
		obs.Str("session", name), obs.Str("dead", dead.addr()), obs.Str("standby", standby.addr()))
	defer fsp.End()

	if epoch > 0 && g.cfg.Faults.PromoteStale() {
		// Fault-injection seam: promote under the current (stale) epoch
		// instead of bumping. The standby must reject it typed — this is
		// the proof a replayed or duplicate promotion cannot fork history.
		resp := g.forward(standby, &server.Request{Session: name, Verb: "promote", Epoch: epoch,
			TraceID: trace, ParentSpan: fsp.SID()})
		if !resp.OK && resp.Code == server.CodeFenced {
			g.reg.Counter("gateway_stale_promotes_fenced").Inc()
			g.eventT("stale_promote_fenced", name, trace,
				fmt.Sprintf("standby %s rejected promote at stale epoch %d", standby.addr(), epoch))
		}
	}

	resp := g.forward(standby, &server.Request{Session: name, Verb: "promote",
		TraceID: trace, ParentSpan: fsp.SID()})
	if !resp.OK {
		g.reg.Counter("gateway_failover_failures").Inc()
		g.eventT("failover_failed", name, trace,
			fmt.Sprintf("promote on %s: %s (%s)", standby.addr(), resp.Error, resp.Code))
		return
	}
	var ack replica.Ack
	if resp.Data != nil {
		json.Unmarshal(resp.Data, &ack)
	}
	r.mu.Lock()
	r.backend = standby
	r.pinned = true
	r.replica = nil
	if ack.Epoch > r.epoch {
		r.epoch = ack.Epoch
	}
	r.mu.Unlock()
	g.reg.Counter("gateway_failovers").Inc()
	g.eventT("failover", name, trace,
		fmt.Sprintf("promoted standby %s at epoch %d (acked seq %d); primary %s down past %v",
			standby.addr(), ack.Epoch, ack.AckedSeq, dead.addr(), g.cfg.FailoverGrace))
	g.log.Info("failover", obs.Str("session", name), obs.Str("from", dead.addr()),
		obs.Str("to", standby.addr()), obs.U64("epoch", ack.Epoch), obs.Str("trace", trace))
	if g.cfg.Replicate {
		// Close the loop: the promoted primary gets its own standby so a
		// second failure is survivable too.
		g.armReplication(name, standby, trace, fsp.SID())
	}
}
