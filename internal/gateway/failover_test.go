package gateway_test

import (
	"encoding/json"
	"testing"
	"time"

	"livesim/internal/faultinject"
	"livesim/internal/gateway"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

// sessionInfosOf lists what a backend hosts, with the replication
// columns the plain name list hides. A dead backend reports hosting
// nothing (failover tests walk pools with halted members).
func sessionInfosOf(t *testing.T, b *testBackend) map[string]server.SessionInfo {
	t.Helper()
	c, err := client.Dial(b.addr())
	if err != nil {
		return nil
	}
	defer c.Close()
	resp, err := c.Do(&server.Request{Verb: "sessions"})
	if err != nil || !resp.OK {
		return nil
	}
	var infos []server.SessionInfo
	if resp.Data != nil {
		json.Unmarshal(resp.Data, &infos)
	}
	m := make(map[string]server.SessionInfo, len(infos))
	for _, info := range infos {
		m[info.Name] = info
	}
	return m
}

// primaryOf returns which backend hosts the session as a primary (not
// a follower copy).
func primaryOf(t *testing.T, backends []*testBackend, name string) *testBackend {
	t.Helper()
	for _, b := range backends {
		if in, ok := sessionInfosOf(t, b)[name]; ok && !in.Follower {
			return b
		}
	}
	return nil
}

// TestGatewayFailoverPromotesStandby: with replication armed, killing a
// session's primary past the grace window promotes the standby — the
// same gateway connection serves the session again with every acked
// mutation intact, and the resurrected old primary's copy is swept.
func TestGatewayFailoverPromotesStandby(t *testing.T) {
	b0, b1 := newTestBackend(t), newTestBackend(t)
	backends := []*testBackend{b0, b1}
	_, gaddr := startGateway(t, gateway.Config{
		Backends:      []gateway.BackendSpec{{Addr: b0.addr()}, {Addr: b1.addr()}},
		Replicate:     true,
		FailoverGrace: 200 * time.Millisecond,
	})
	c := dial(t, gaddr)

	createTiny(t, c, "f0")
	wantPeek, wantCycle := drive(t, c, "f0")

	primary := primaryOf(t, backends, "f0")
	if primary == nil {
		t.Fatal("no backend hosts f0 as primary")
	}
	standby := b0
	if primary == b0 {
		standby = b1
	}
	// The create armed replication: the standby holds a hot follower,
	// and every mutation drive() committed was acked by it.
	pin := sessionInfosOf(t, primary)["f0"]
	if pin.ReplicaAddr != standby.addr() || pin.ReplLag != 0 || pin.ReplAckedSeq != pin.HeadSeq {
		t.Fatalf("primary replication row = %+v, want standby %s fully acked", pin, standby.addr())
	}
	if sin := sessionInfosOf(t, standby)["f0"]; !sin.Follower {
		t.Fatalf("standby row = %+v, want follower", sin)
	}

	primary.halt()
	// Failover: past the grace window the sweep promotes the standby and
	// the session serves again — no restart of the dead backend needed.
	waitUntil(t, 10*time.Second, "failover to the standby", func() bool {
		r, err := c.Do(&server.Request{Session: "f0", Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		return err == nil && r.OK
	})
	gotPeek, gotCycle := fingerprint(t, c, "f0")
	if gotPeek != wantPeek || gotCycle != wantCycle {
		t.Errorf("state after failover = (%q, %q), want (%q, %q)", gotPeek, gotCycle, wantPeek, wantCycle)
	}
	// The promoted copy is a primary under a real epoch and takes writes.
	mustOK(t, c, &server.Request{Session: "f0", Verb: "run", Args: []string{"clock", "p0", "10"}})
	nin := sessionInfosOf(t, standby)["f0"]
	if nin.Follower || nin.Epoch == 0 {
		t.Fatalf("promoted row = %+v, want primary with epoch > 0", nin)
	}

	// The old primary comes back with its pre-failover copy: the
	// gateway's reconcile sweep must close it (exactly-one-copy), not
	// let it serve a stale fork.
	primary.restart()
	waitUntil(t, 10*time.Second, "stale copy swept from the old primary", func() bool {
		_, ok := sessionInfosOf(t, primary)["f0"]
		return !ok
	})
	// And the session still serves from the survivor.
	mustOK(t, c, &server.Request{Session: "f0", Verb: "run", Args: []string{"clock", "p0", "5"}})
}

// TestGatewayStalePromoteFenced: the promote-stale fault makes the
// gateway's second failover first attempt a promotion under the
// session's current epoch. The standby must reject it with the typed
// fenced code — a replayed or duplicate promotion cannot fork history —
// and the real promotion still lands.
func TestGatewayStalePromoteFenced(t *testing.T) {
	b0, b1, b2 := newTestBackend(t), newTestBackend(t), newTestBackend(t)
	backends := []*testBackend{b0, b1, b2}
	faults := faultinject.New()
	g, gaddr := startGateway(t, gateway.Config{
		Backends:      []gateway.BackendSpec{{Addr: b0.addr()}, {Addr: b1.addr()}, {Addr: b2.addr()}},
		Replicate:     true,
		FailoverGrace: 200 * time.Millisecond,
		Faults:        faults,
	})
	c := dial(t, gaddr)

	createTiny(t, c, "s0")
	wantPeek, wantCycle := drive(t, c, "s0")

	// Failover #1 (normal): establishes epoch 1 and re-arms replication
	// onto the third backend.
	first := primaryOf(t, backends, "s0")
	if first == nil {
		t.Fatal("no backend hosts s0 as primary")
	}
	first.halt()
	waitUntil(t, 10*time.Second, "first failover", func() bool {
		r, err := c.Do(&server.Request{Session: "s0", Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		return err == nil && r.OK
	})
	second := primaryOf(t, backends, "s0")
	if second == nil || second == first {
		t.Fatalf("second primary = %v, want a promoted standby", second)
	}
	waitUntil(t, 10*time.Second, "replication re-armed after failover", func() bool {
		return sessionInfosOf(t, second)["s0"].ReplicaAddr != ""
	})

	// Failover #2 under the fault: the stale attempt must be fenced,
	// then the real promotion proceeds.
	faults.ForcePromoteStale()
	second.halt()
	waitUntil(t, 10*time.Second, "second failover", func() bool {
		r, err := c.Do(&server.Request{Session: "s0", Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		return err == nil && r.OK
	})
	gotPeek, gotCycle := fingerprint(t, c, "s0")
	if gotPeek != wantPeek || gotCycle != wantCycle {
		t.Errorf("state after double failover = (%q, %q), want (%q, %q)", gotPeek, gotCycle, wantPeek, wantCycle)
	}
	fencedSeen := false
	for _, e := range g.Events().All() {
		if e.Type == "stale_promote_fenced" && e.Session == "s0" {
			fencedSeen = true
		}
	}
	if !fencedSeen {
		t.Error("stale promote was not attempted/fenced (no stale_promote_fenced event)")
	}
	if fired := faults.Fired(); len(fired) == 0 {
		t.Error("promote-stale fault never fired")
	}
	third := primaryOf(t, backends, "s0")
	if third == nil || third.srv == second.srv {
		t.Fatalf("third primary missing after second failover")
	}
	if in := sessionInfosOf(t, third)["s0"]; in.Epoch < 2 {
		t.Errorf("epoch after two failovers = %d, want >= 2", in.Epoch)
	}
}
