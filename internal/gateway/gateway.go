// Package gateway is livesim's fleet front door: a stateless NDJSON
// proxy that speaks the exact wire protocol of internal/server and
// spreads sessions across a pool of livesimd backends.
//
// Placement is rendezvous hashing over the backend list — no placement
// database, no coordination; a restarted gateway re-derives routes by
// asking each backend what it hosts. A health checker walks the pool
// (wire ping, plus /healthz when an admin address is known) and keeps
// unhealthy backends out of placement while still routing existing
// sessions to them, so the backend's own typed rejections (draining,
// recovering, disk_full, overloaded with retry_after_ms) flow through
// to clients untouched. Trace IDs stamped at the gateway propagate to
// the backend, so one client call still reads as one span tree.
//
// The headline capability is live migration (migrate.go): export a
// session's journal+checkpoints from one backend as a transfer blob,
// import it on another, and flip routing at the commit point — the
// freeze window is the only blackout a client can observe. Draining a
// backend is just "migrate everything off, then tell it to drain".
package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/faultinject"
	"livesim/internal/govern"
	"livesim/internal/obs"
	"livesim/internal/server"
	"livesim/internal/transfer"
)

// Config tunes a Gateway.
type Config struct {
	// Backends is the fixed pool. At least one required.
	Backends []BackendSpec
	// HealthEvery is the probe cadence (default 500ms).
	HealthEvery time.Duration
	// ProbeTimeout bounds one health probe or discovery call (default 2s).
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one proxied request (default 60s) — a
	// wedged backend must not pin gateway goroutines forever. Backends
	// enforce their own RequestTimeout well under this.
	ForwardTimeout time.Duration
	// MigrateTimeout bounds one live migration end to end, including
	// waiting out the session's in-flight requests (default 15s).
	MigrateTimeout time.Duration
	// WriteTimeout bounds one response write to a client (default 10s).
	WriteTimeout time.Duration
	// Replicate arms session replication: every placed session gets a
	// standby on the rendezvous next-best backend, and the failover
	// sweep promotes it when the primary stays down past FailoverGrace.
	Replicate bool
	// FailoverGrace is how long a primary must stay down before its
	// sessions fail over to their standbys (default 2s). Too short and
	// a probe blip burns an epoch; too long and the blackout grows.
	FailoverGrace time.Duration
	// Metrics/Log/EventRingCap wire the observability plane (all
	// optional; nil is off).
	Metrics      *obs.Registry
	Log          *obs.Logger
	EventRingCap int
	// TraceOut, when set, receives the gateway's span JSONL (request,
	// forward, migrate and failover spans) in addition to the span store.
	TraceOut io.Writer
	// ProcName identifies this process in assembled fleet traces and
	// blackbox dumps (default "lsgate:<pid>").
	ProcName string
	// SpanStoreCap bounds the in-memory span store (live + retained
	// traces, for the `trace` verb and /tracez). 0 uses the default
	// (256 traces); negative disables the store.
	SpanStoreCap int
	// TraceSlow is the tail-sampling threshold: completed traces at
	// least this slow (or errored) are retained in the span store, fast
	// successes only pass through the recent ring (default 250ms).
	TraceSlow time.Duration
	// FlightRecorderCap sizes the always-on black-box ring served by
	// /flightz. 0 uses the default (512 lines); negative disables it.
	FlightRecorderCap int
	// BlackboxDir receives blackbox-<ts>.jsonl dumps on panic and on the
	// periodic flush. Empty disables dumps (the /flightz endpoint still
	// serves the ring).
	BlackboxDir string
	// BlackboxFlushEvery is the cadence of the periodic black-box flush
	// to BlackboxDir — the record that survives a SIGKILL. 0 uses the
	// default (2s); negative disables the flusher.
	BlackboxFlushEvery time.Duration
	// Faults injects failures at migration stages (tests only).
	Faults *faultinject.Plan
	// OnMigrateStage, when set, is called before each migration stage
	// ("export", "import", "commit") — the seam fault-matrix tests use
	// to crash a backend at exactly the worst moment.
	OnMigrateStage func(session, stage string)
}

// Gateway fronts a pool of livesimd backends. Stateless by design:
// everything in it (routes, health) is re-derivable from the backends.
type Gateway struct {
	cfg    Config
	reg    *obs.Registry
	log    *obs.Logger
	events *obs.EventRing
	start  time.Time

	// Fleet tracing + crash forensics: every request and forward is a
	// span on tracer; the span store indexes completed spans by trace id
	// for the `trace` verb and /tracez; the flight recorder is the
	// always-on black box /flightz serves and blackbox() dumps.
	tracer       *obs.Tracer
	fan          *obs.Fanout
	store        *obs.SpanStore
	flight       *obs.FlightRecorder
	blackboxTS   atomic.Int64 // last trigger dump, unix nanos (rate limit)
	bootBlackbox string       // periodic flush target path

	backends []*backend

	mu        sync.Mutex
	routes    map[string]*route
	listeners map[net.Listener]bool
	conns     map[*gconn]bool
	draining  bool

	inflight sync.WaitGroup
	connWG   sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
}

// route is where one session lives, plus the freeze latch a migration
// uses to hold new requests while the session is in flight between
// backends.
type route struct {
	mu      sync.Mutex
	backend *backend
	// pinned marks routes this gateway is authoritative for (it placed
	// the create or committed the migration). Discovery conflicts on a
	// pinned route are resurrections and get swept; conflicts on a
	// learned route are ambiguous and only reported.
	pinned bool
	// epoch is the session's fencing token as last observed (promote
	// acks, discovery). Stamped on forwarded mutations when nonzero, so
	// a stale primary fences itself on first contact after a failover.
	epoch uint64
	// replica is the session's standby backend, when replication is
	// armed — the failover sweep's promotion target.
	replica *backend

	migrating bool
	unfrozen  chan struct{} // non-nil while migrating; closed at commit/abort
	inflight  int
	idle      chan struct{} // non-nil while a migration waits for inflight drain
}

// acquire returns the session's backend, waiting out any migration
// freeze (bounded). The caller must release().
func (r *route) acquire(timeout time.Duration) (*backend, error) {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		if !r.migrating {
			r.inflight++
			b := r.backend
			r.mu.Unlock()
			return b, nil
		}
		ch := r.unfrozen
		r.mu.Unlock()
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return nil, fmt.Errorf("session frozen by migration for over %v", timeout)
		}
	}
}

func (r *route) release() {
	r.mu.Lock()
	r.inflight--
	if r.inflight == 0 && r.idle != nil {
		close(r.idle)
		r.idle = nil
	}
	r.mu.Unlock()
}

// New builds a gateway, runs one synchronous probe+discovery pass so
// it starts with a live route table, and starts the health loop.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 60 * time.Second
	}
	if cfg.MigrateTimeout <= 0 {
		cfg.MigrateTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.FailoverGrace <= 0 {
		cfg.FailoverGrace = 2 * time.Second
	}
	g := &Gateway{
		cfg:       cfg,
		reg:       cfg.Metrics,
		log:       cfg.Log,
		events:    obs.NewEventRing(cfg.EventRingCap),
		start:     time.Now(),
		fan:       obs.NewFanout(),
		routes:    make(map[string]*route),
		listeners: make(map[net.Listener]bool),
		conns:     make(map[*gconn]bool),
		stop:      make(chan struct{}),
	}
	if cfg.TraceOut != nil {
		g.fan.Attach(cfg.TraceOut)
	}
	if cfg.ProcName == "" {
		g.cfg.ProcName = fmt.Sprintf("lsgate:%d", os.Getpid())
	}
	if cfg.TraceSlow == 0 {
		g.cfg.TraceSlow = 250 * time.Millisecond
	}
	if cfg.SpanStoreCap >= 0 {
		g.store = obs.NewSpanStore(obs.SpanStoreConfig{
			Proc:         g.cfg.ProcName,
			MaxTraces:    cfg.SpanStoreCap,
			RetainOverUS: g.cfg.TraceSlow.Microseconds(),
		})
		g.fan.Attach(g.store)
	}
	if cfg.FlightRecorderCap >= 0 {
		g.flight = obs.NewFlightRecorder(g.cfg.ProcName, cfg.FlightRecorderCap)
		g.fan.Attach(g.flight)
	}
	g.tracer = obs.NewTracer(g.fan)
	seen := make(map[string]bool, len(cfg.Backends))
	for _, spec := range cfg.Backends {
		if spec.Addr == "" {
			return nil, fmt.Errorf("gateway: backend with empty address")
		}
		if seen[spec.Addr] {
			return nil, fmt.Errorf("gateway: duplicate backend %s", spec.Addr)
		}
		seen[spec.Addr] = true
		g.backends = append(g.backends, newBackend(spec))
	}
	g.probeAll() // synchronous: placement works from the first request
	for _, b := range g.backends {
		if b.alive() {
			g.discover(b)
		}
	}
	go g.healthLoop()
	if g.flight != nil && g.cfg.BlackboxDir != "" && cfg.BlackboxFlushEvery >= 0 {
		if g.cfg.BlackboxFlushEvery == 0 {
			g.cfg.BlackboxFlushEvery = 2 * time.Second
		}
		os.MkdirAll(g.cfg.BlackboxDir, 0o755)
		g.bootBlackbox = obs.BlackboxPath(g.cfg.BlackboxDir, time.Now())
		go g.blackboxFlusher()
	}
	return g, nil
}

func (g *Gateway) probeTimeout() time.Duration { return g.cfg.ProbeTimeout }

// Metrics returns the gateway's registry (nil when disabled).
func (g *Gateway) Metrics() *obs.Registry { return g.reg }

// Events returns the gateway's operational event ring.
func (g *Gateway) Events() *obs.EventRing { return g.events }

func (g *Gateway) healthLoop() {
	// ±20% jitter per tick: several gateways fronting one pool (or this
	// one restarting alongside its backends) must not probe every
	// backend at the same instant, turning the health plane itself into
	// a synchronized load spike.
	rng := govern.NewRand()
	timer := time.NewTimer(govern.Jitter(g.cfg.HealthEvery, 0.2, rng))
	defer timer.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-timer.C:
			g.probeAll()
			g.failoverSweep()
			timer.Reset(govern.Jitter(g.cfg.HealthEvery, 0.2, rng))
		}
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(b)
		}(b)
	}
	wg.Wait()
}

// discover asks one backend what it hosts and folds that into the
// route table. New names become learned (unpinned) routes. A name the
// table already places elsewhere is a conflict: when our route is
// pinned — this gateway committed a migration away from b or placed
// the session elsewhere — b's copy is a resurrection (a source that
// crashed after export and came back) and is closed with a forwarding
// tombstone, restoring the exactly-one-copy invariant. On a merely
// learned route the gateway has no authority to pick a side, so it
// reports the conflict and touches nothing.
func (g *Gateway) discover(b *backend) {
	cli, err := b.client()
	if err != nil {
		return
	}
	resp, err := doTimeout(cli, &server.Request{Verb: "sessions"}, g.probeTimeout())
	if err != nil {
		b.dropClient(cli)
		return
	}
	if !resp.OK || resp.Data == nil {
		return
	}
	var infos []server.SessionInfo
	if err := json.Unmarshal(resp.Data, &infos); err != nil {
		return
	}
	for _, info := range infos {
		if info.Follower {
			// A follower is the replication standby's hot copy, not a
			// second primary: never a conflict, never swept. Learn it as
			// the route's promotion target (a restarted gateway re-derives
			// its failover map this way).
			g.mu.Lock()
			if r := g.routes[info.Name]; r != nil {
				r.mu.Lock()
				if r.backend != b && r.replica == nil {
					r.replica = b
				}
				r.mu.Unlock()
			}
			g.mu.Unlock()
			continue
		}
		g.mu.Lock()
		r := g.routes[info.Name]
		if r == nil {
			nr := &route{backend: b, epoch: info.Epoch}
			if info.ReplicaAddr != "" {
				if rb := g.backendByAddr(info.ReplicaAddr); rb != nil && rb != b {
					nr.replica = rb
				}
			}
			g.routes[info.Name] = nr
			g.mu.Unlock()
			continue
		}
		r.mu.Lock()
		owner, pinned := r.backend, r.pinned
		if owner == b {
			// Refresh the replication view from the primary's own row.
			if info.Epoch > r.epoch {
				r.epoch = info.Epoch
			}
			if info.ReplicaAddr != "" && r.replica == nil {
				if rb := g.backendByAddr(info.ReplicaAddr); rb != nil && rb != b {
					r.replica = rb
				}
			}
		}
		r.mu.Unlock()
		g.mu.Unlock()
		if owner == b {
			continue
		}
		if pinned {
			g.reg.Counter("gateway_resurrections_closed").Inc()
			g.events.Add("resurrection", info.Name,
				fmt.Sprintf("stale copy on %s closed; authoritative on %s", b.addr(), owner.addr()))
			g.forward(b, &server.Request{Session: info.Name, Verb: "close",
				Args: []string{"moved", owner.addr()}})
		} else {
			g.events.Add("session_conflict", info.Name,
				fmt.Sprintf("hosted on both %s and %s; routing to %s", owner.addr(), b.addr(), owner.addr()))
			g.log.Error("session conflict", obs.Str("session", info.Name),
				obs.Str("routed", owner.addr()), obs.Str("also_on", b.addr()))
		}
	}
}

// reconcile is the recovered-backend sweep the health checker kicks.
func (g *Gateway) reconcile(b *backend) { g.discover(b) }

func (g *Gateway) backendByAddr(addr string) *backend {
	for _, b := range g.backends {
		if b.addr() == addr {
			return b
		}
	}
	return nil
}

func (g *Gateway) aliveBackends() []*backend {
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.alive() {
			out = append(out, b)
		}
	}
	return out
}

func (g *Gateway) placeableBackends() []*backend {
	out := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.placeable() {
			out = append(out, b)
		}
	}
	return out
}

// setRoute records where a session lives. pinned routes are never
// downgraded to learned by a later unpinned set.
func (g *Gateway) setRoute(session string, b *backend, pinned bool) {
	g.mu.Lock()
	r := g.routes[session]
	if r == nil {
		g.routes[session] = &route{backend: b, pinned: pinned}
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	r.mu.Lock()
	r.backend = b
	r.pinned = r.pinned || pinned
	r.mu.Unlock()
}

// dropRoute forgets a session iff it still points at b (a concurrent
// migration may have retargeted it).
func (g *Gateway) dropRoute(session string, b *backend) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.routes[session]
	if r == nil {
		return
	}
	r.mu.Lock()
	cur := r.backend
	migrating := r.migrating
	r.mu.Unlock()
	if cur == b && !migrating {
		delete(g.routes, session)
	}
}

// Serve accepts connections on ln until the listener closes.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		ln.Close()
		return server.ErrDraining
	}
	g.listeners[ln] = true
	g.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			draining := g.draining
			g.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		g.reg.Counter("gateway_conns_opened").Inc()
		g.connWG.Add(1)
		go g.handleConn(nc)
	}
}

// gconn is one client connection; responses from concurrent request
// goroutines serialize on writeMu.
type gconn struct {
	g       *Gateway
	nc      net.Conn
	writeMu sync.Mutex
}

func (c *gconn) write(resp *server.Response) {
	line, err := json.Marshal(resp)
	if err != nil {
		c.g.log.Error("marshal response failed", obs.Str("err", err.Error()))
		return
	}
	line = append(line, '\n')
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.g.cfg.WriteTimeout))
	c.nc.Write(line)
}

func (g *Gateway) handleConn(nc net.Conn) {
	c := &gconn{g: g, nc: nc}
	g.mu.Lock()
	g.conns[c] = true
	g.mu.Unlock()
	defer func() {
		nc.Close()
		g.mu.Lock()
		delete(g.conns, c)
		g.mu.Unlock()
		g.reg.Counter("gateway_conns_closed").Inc()
		g.connWG.Done()
	}()

	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // design sources and transfer blobs ride in requests
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req server.Request
		if err := json.Unmarshal(line, &req); err != nil {
			c.write(&server.Response{OK: false, Error: "bad request: " + err.Error(), Code: server.CodeBadRequest})
			continue
		}
		// Every request gets its own goroutine: a forward blocks on the
		// backend, and one slow session must not stall the others
		// pipelined on this connection. Responses are id-matched.
		g.inflight.Add(1)
		go func(req *server.Request) {
			defer g.inflight.Done()
			c.write(g.handle(req))
		}(&req)
	}
}

// handle routes one request and returns its response.
func (g *Gateway) handle(req *server.Request) (resp *server.Response) {
	t0 := time.Now()
	g.reg.Counter("gateway_requests").Inc()
	if req.TraceID == "" {
		req.TraceID = obs.NewTraceID() // one tree across gateway and backend
	}
	trace := req.TraceID
	sp := g.tracer.StartRemote(trace, req.ParentSpan, "request",
		obs.Str("verb", req.Verb), obs.Str("session", req.Session))
	req.ParentSpan = sp.SID() // forwards and fleet verbs parent here
	defer func() {
		if r := recover(); r != nil {
			g.reg.Counter("gateway_panics_recovered").Inc()
			g.blackbox("panic", req.Session, trace, fmt.Sprintf("recovered gateway panic: %v", r))
			resp = gerr(req, server.CodePanic, fmt.Errorf("gateway panic: %v", r))
		}
		sp.Annotate(obs.Bool("ok", resp != nil && resp.OK))
		sp.End()
		dur := time.Since(t0)
		// The request span just emitted, so the store holds the whole
		// gateway-side tree — the tail keep/drop decision happens here.
		g.store.Complete(trace, dur.Microseconds(), resp != nil && resp.OK)
		g.reg.Histogram("gateway_request_seconds", nil).Observe(dur.Seconds())
	}()

	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		return gerr(req, server.CodeDraining, server.ErrDraining)
	}

	verb := strings.ToLower(req.Verb)
	switch verb {
	case "ping":
		return g.pingResp(req)
	case "help":
		return g.helpResp(req)
	case "metricz":
		snap := g.reg.Snapshot()
		var txt bytes.Buffer
		g.reg.WriteText(&txt)
		return &server.Response{ID: req.ID, OK: true, Output: txt.String(), Data: snap.JSON()}
	case "events":
		evs := g.events.All()
		data, _ := json.Marshal(evs)
		var b strings.Builder
		for _, e := range evs {
			fmt.Fprintf(&b, "%d %s %s %s %s\n", e.Seq, e.TS.Format(time.RFC3339), e.Type, e.Session, e.Msg)
		}
		return &server.Response{ID: req.ID, OK: true, Output: b.String(), Data: data}
	case "backends":
		return g.backendsResp(req)
	case "sessions":
		return g.aggregateSessions(req)
	case "create":
		return g.placeCreate(req)
	case "import":
		return g.placeImport(req)
	case "migrate":
		return g.migrateVerb(req)
	case "drain":
		return g.drainVerb(req)
	case "trace":
		// `trace` is two verbs: the fleet assembly verb (`trace <id>`,
		// no session needed) and the session-scoped VCD dump (session +
		// signal args). A lone 16-hex argument, or no session at all,
		// means the fleet verb; anything else follows the route table.
		if req.Session == "" || (len(req.Args) == 1 && isTraceID(req.Args[0])) || len(req.Args) == 0 {
			return g.traceVerb(req)
		}
	case "subscribe":
		return gerr(req, server.CodeBadRequest, fmt.Errorf(
			"subscribe is not supported through the gateway; connect to the backend directly (see `backends`)"))
	}
	// Everything else — session verbs, close, unquarantine, export —
	// needs a session and follows the route table.
	if req.Session == "" {
		return gerr(req, server.CodeBadRequest, fmt.Errorf("verb %q needs a session", req.Verb))
	}
	return g.forwardSession(req, verb)
}

// forwardSession routes a session-addressed request: routed sessions
// go to their backend (waiting out any migration freeze); unknown
// sessions sweep the alive backends in rendezvous order so the answer
// is found wherever it lives and the route is learned for next time.
func (g *Gateway) forwardSession(req *server.Request, verb string) *server.Response {
	g.mu.Lock()
	r := g.routes[req.Session]
	g.mu.Unlock()

	if r != nil {
		b, err := r.acquire(g.cfg.MigrateTimeout)
		if err != nil {
			return gerr(req, server.CodeUnavailable, err)
		}
		if req.Epoch == 0 && verb != "promote" && verb != "replapply" {
			// Stamp the fencing token the gateway knows for this session.
			// A backend holding an older epoch (a resurrected pre-failover
			// primary) fences itself on seeing it; promote/replapply are
			// excluded because their Epoch field is protocol input.
			r.mu.Lock()
			req.Epoch = r.epoch
			r.mu.Unlock()
		}
		resp := g.forward(b, req)
		r.release()
		switch {
		case resp.Code == server.CodeNoSession:
			// The backend no longer hosts it (closed, idle-evicted): the
			// route is stale, not the session's existence elsewhere.
			g.dropRoute(req.Session, b)
		case resp.Code == server.CodeFollower || resp.Code == server.CodeFenced:
			// The route points at a standby or a fenced corpse — stale
			// either way (a failover happened around this gateway). Drop
			// it so the next request sweeps for the live primary.
			g.dropRoute(req.Session, b)
		case resp.Code == server.CodeMoved && resp.MovedTo != "":
			// Another actor migrated it. Chase one hop and relearn.
			if nb := g.backendByAddr(resp.MovedTo); nb != nil && nb.alive() {
				g.reg.Counter("gateway_moved_follows").Inc()
				g.setRoute(req.Session, nb, false)
				return g.forward(nb, req)
			}
		case verb == "close" && resp.OK:
			g.dropRoute(req.Session, b)
		}
		return resp
	}

	order := rendezvousOrder(req.Session, g.aliveBackends())
	if len(order) == 0 {
		return gerr(req, server.CodeUnavailable, fmt.Errorf("no backend available"))
	}
	var last *server.Response
	for _, b := range order {
		resp := g.forward(b, req)
		last = resp
		switch resp.Code {
		case server.CodeNoSession, server.CodeUnavailable:
			continue // not here / can't tell; a miss means nothing executed
		case server.CodeFollower, server.CodeFenced:
			// A standby's copy or a fenced corpse answered: the live
			// primary is elsewhere — keep sweeping.
			continue
		case server.CodeMoved:
			if nb := g.backendByAddr(resp.MovedTo); nb != nil && nb.alive() {
				g.reg.Counter("gateway_moved_follows").Inc()
				g.setRoute(req.Session, nb, false)
				return g.forward(nb, req)
			}
			return resp
		}
		if resp.Code != server.CodeBadRequest {
			// Any session-scoped answer (success, quarantined, recovering,
			// backpressure…) proves the session lives here.
			g.reg.Counter("gateway_routes_learned").Inc()
			g.setRoute(req.Session, b, false)
		}
		return resp
	}
	return last
}

// forward proxies one request to b, preserving the caller's request id
// (the backend client assigns its own on the copy). A transport-level
// failure marks the backend down — the health checker will decide when
// it is back — and surfaces as CodeUnavailable with a retry hint sized
// to the probe cadence.
func (g *Gateway) forward(b *backend, req *server.Request) *server.Response {
	cli, err := b.client()
	if err != nil {
		g.reg.Counter("gateway_forward_errors").Inc()
		g.setBackendState(b, bsDown, err.Error())
		return g.unavailResp(req, b, err)
	}
	creq := *req
	// A traced request gets a per-hop "forward" span: its sid rides in
	// the wire request so the backend's request span parents under it,
	// and its duration is the gateway→backend hop the assembled tree
	// shows. Untraced internal calls (probes, discovery, the `trace`
	// verb's own span queries) stay spanless by design.
	var fsp *obs.Span
	if creq.TraceID != "" {
		fsp = g.tracer.StartRemote(creq.TraceID, creq.ParentSpan, "forward",
			obs.Str("backend", b.addr()), obs.Str("verb", creq.Verb))
		creq.ParentSpan = fsp.SID()
	}
	resp, err := doTimeout(cli, &creq, g.cfg.ForwardTimeout)
	if err != nil {
		fsp.Annotate(obs.Bool("ok", false))
		fsp.End()
		b.dropClient(cli)
		g.reg.Counter("gateway_forward_errors").Inc()
		g.setBackendState(b, bsDown, err.Error())
		return g.unavailResp(req, b, err)
	}
	resp.ID = req.ID
	fsp.Annotate(obs.Bool("ok", resp.OK))
	fsp.End()
	return resp
}

func (g *Gateway) unavailResp(req *server.Request, b *backend, err error) *server.Response {
	return &server.Response{
		ID: req.ID, OK: false, Code: server.CodeUnavailable,
		Error:        fmt.Sprintf("backend %s unavailable: %v", b.addr(), err),
		RetryAfterMs: g.cfg.HealthEvery.Milliseconds() + 1,
	}
}

func gerr(req *server.Request, code string, err error) *server.Response {
	return &server.Response{ID: req.ID, OK: false, Error: err.Error(), Code: code}
}

// placeCreate picks a backend by rendezvous hash over the placeable
// slate and pins the route. The typed failure path flows through: a
// session_limit or disk_full from the chosen backend is the client's
// answer (placement is deterministic, not load-dodging).
func (g *Gateway) placeCreate(req *server.Request) *server.Response {
	if req.Session == "" {
		return gerr(req, server.CodeBadRequest, fmt.Errorf("create needs a session name"))
	}
	g.mu.Lock()
	if r := g.routes[req.Session]; r != nil {
		r.mu.Lock()
		owner := r.backend
		r.mu.Unlock()
		g.mu.Unlock()
		return gerr(req, server.CodeNoSession,
			fmt.Errorf("session %q already exists on %s", req.Session, owner.addr()))
	}
	g.mu.Unlock()
	b := rendezvousPick(req.Session, g.placeableBackends())
	if b == nil {
		return gerr(req, server.CodeUnavailable, fmt.Errorf("no placeable backend"))
	}
	resp := g.forward(b, req)
	if resp.OK {
		g.reg.Counter("gateway_creates_placed").Inc()
		g.setRoute(req.Session, b, true)
		g.eventT("placed", req.Session, req.TraceID, "created on "+b.addr())
		if g.cfg.Replicate {
			g.armReplication(req.Session, b, req.TraceID, req.ParentSpan)
		}
	}
	return resp
}

// placeImport places a transfer blob like a create: decode just the
// meta for the session name, rendezvous-pick, pin on success.
func (g *Gateway) placeImport(req *server.Request) *server.Response {
	name := req.Session
	if name == "" {
		blob, err := transfer.Decode(req.Blob)
		if err != nil {
			return gerr(req, server.CodeBadRequest, fmt.Errorf("import blob: %w", err))
		}
		name = blob.Meta.Session
	}
	g.mu.Lock()
	_, exists := g.routes[name]
	g.mu.Unlock()
	if exists {
		return gerr(req, server.CodeNoSession, fmt.Errorf("session %q already exists", name))
	}
	b := rendezvousPick(name, g.placeableBackends())
	if b == nil {
		return gerr(req, server.CodeUnavailable, fmt.Errorf("no placeable backend"))
	}
	resp := g.forward(b, req)
	if resp.OK {
		g.setRoute(name, b, true)
		g.eventT("placed", name, req.TraceID, "imported on "+b.addr())
	}
	return resp
}

func (g *Gateway) pingResp(req *server.Request) *server.Response {
	alive := 0
	for _, b := range g.backends {
		if b.alive() {
			alive++
		}
	}
	g.mu.Lock()
	routes := len(g.routes)
	g.mu.Unlock()
	data, _ := json.Marshal(map[string]any{
		"uptime_secs": time.Since(g.start).Seconds(),
		"backends":    len(g.backends),
		"alive":       alive,
		"routes":      routes,
		"gateway":     true,
	})
	return &server.Response{ID: req.ID, OK: true, Output: "pong (gateway)\n", Data: data}
}

func (g *Gateway) helpResp(req *server.Request) *server.Response {
	var b strings.Builder
	b.WriteString("gateway verbs:\n")
	b.WriteString("  backends                      backend pool health and route counts\n")
	b.WriteString("  sessions                      sessions aggregated across all backends\n")
	b.WriteString("  migrate [target-addr]         live-migrate a session (name in \"session\")\n")
	b.WriteString("  drain <backend-addr>          migrate everything off a backend, then drain it\n")
	b.WriteString("  trace [trace-id]              assemble one trace's span tree across the fleet\n")
	b.WriteString("  metricz                       gateway metrics registry\n")
	b.WriteString("  events                        gateway operational events\n")
	b.WriteString("  ping                          gateway liveness + pool summary\n")
	b.WriteString("everything else (create, close, run, apply, …) is forwarded to\n")
	b.WriteString("the backend hosting the named session; `subscribe` is the one\n")
	b.WriteString("verb that needs a direct backend connection.\n")
	return &server.Response{ID: req.ID, OK: true, Output: b.String()}
}

// BackendInfo is one row of the `backends` verb's Data payload.
type BackendInfo struct {
	Addr      string `json:"addr"`
	AdminAddr string `json:"admin_addr,omitempty"`
	State     string `json:"state"`
	Sessions  int64  `json:"sessions"`
	Routes    int    `json:"routes"`
	// ReplicaRoutes counts sessions whose hot standby lives on this
	// backend — the load a failover of their primaries would add here.
	ReplicaRoutes int  `json:"replica_routes,omitempty"`
	Placeable     bool `json:"placeable"`
}

func (g *Gateway) backendsResp(req *server.Request) *server.Response {
	byBackend := make(map[*backend]int)
	replicasOn := make(map[*backend]int)
	g.mu.Lock()
	for _, r := range g.routes {
		r.mu.Lock()
		byBackend[r.backend]++
		if r.replica != nil {
			replicasOn[r.replica]++
		}
		r.mu.Unlock()
	}
	g.mu.Unlock()
	infos := make([]BackendInfo, 0, len(g.backends))
	var b strings.Builder
	for _, be := range g.backends {
		info := BackendInfo{
			Addr: be.addr(), AdminAddr: be.spec.AdminAddr,
			State: be.getState().String(), Sessions: be.sessions.Load(),
			Routes: byBackend[be], ReplicaRoutes: replicasOn[be], Placeable: be.placeable(),
		}
		infos = append(infos, info)
		fmt.Fprintf(&b, "%-32s %-10s sessions=%d routes=%d replicas=%d placeable=%v\n",
			info.Addr, info.State, info.Sessions, info.Routes, info.ReplicaRoutes, info.Placeable)
	}
	data, _ := json.Marshal(infos)
	return &server.Response{ID: req.ID, OK: true, Output: b.String(), Data: data}
}

// FleetSessionInfo is one row of the gateway's aggregated `sessions`
// payload: the backend address plus the backend's own row.
type FleetSessionInfo struct {
	Backend string `json:"backend"`
	server.SessionInfo
}

func (g *Gateway) aggregateSessions(req *server.Request) *server.Response {
	type result struct {
		b     *backend
		infos []server.SessionInfo
	}
	alive := g.aliveBackends()
	ch := make(chan result, len(alive))
	for _, b := range alive {
		go func(b *backend) {
			resp := g.forward(b, &server.Request{Verb: "sessions",
				TraceID: req.TraceID, ParentSpan: req.ParentSpan})
			var infos []server.SessionInfo
			if resp.OK && resp.Data != nil {
				json.Unmarshal(resp.Data, &infos)
			}
			ch <- result{b, infos}
		}(b)
	}
	rows := make([]FleetSessionInfo, 0, 16)
	for range alive {
		res := <-ch
		for _, info := range res.infos {
			rows = append(rows, FleetSessionInfo{Backend: res.b.addr(), SessionInfo: info})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Backend < rows[j].Backend
	})
	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s @%s pipes=%d wal=%dB mark@%d",
			row.Name, row.Backend, len(row.Pipes), row.WALBytes, row.MarkSeq)
		if row.Epoch > 0 {
			fmt.Fprintf(&b, " epoch=%d", row.Epoch)
		}
		if row.ReplicaAddr != "" {
			fmt.Fprintf(&b, " repl=%s acked=%d lag=%d", row.ReplicaAddr, row.ReplAckedSeq, row.ReplLag)
		}
		if row.Follower {
			b.WriteString(" FOLLOWER")
		}
		if row.Fenced {
			b.WriteString(" FENCED")
		}
		b.WriteByte('\n')
	}
	data, _ := json.Marshal(rows)
	return &server.Response{ID: req.ID, OK: true, Output: b.String(), Data: data}
}

func (g *Gateway) migrateVerb(req *server.Request) *server.Response {
	if req.Session == "" {
		return gerr(req, server.CodeBadRequest, fmt.Errorf("migrate needs a session"))
	}
	target := ""
	if len(req.Args) > 0 {
		target = req.Args[0]
	}
	rep, err := g.MigrateTraced(req.Session, target, req.TraceID, req.ParentSpan)
	if err != nil {
		return gerr(req, server.CodeError, err)
	}
	data, _ := json.Marshal(rep)
	return &server.Response{ID: req.ID, OK: true, Data: data,
		Output: fmt.Sprintf("migrated %s: %s -> %s (%.1fms blackout, %dB journal)\n",
			rep.Session, rep.From, rep.To, rep.BlackoutMs, rep.WALBytes)}
}

func (g *Gateway) drainVerb(req *server.Request) *server.Response {
	if len(req.Args) == 0 {
		return gerr(req, server.CodeBadRequest, fmt.Errorf("drain needs a backend address"))
	}
	rep, err := g.drainBackendTraced(req.Args[0], req.TraceID, req.ParentSpan)
	if err != nil {
		return gerr(req, server.CodeError, err)
	}
	data, _ := json.Marshal(rep)
	var b strings.Builder
	fmt.Fprintf(&b, "drained %s: %d migrated, %d failed, drain sent: %v\n",
		rep.Backend, len(rep.Migrated), len(rep.Failed), rep.DrainSent)
	for _, m := range rep.Migrated {
		fmt.Fprintf(&b, "  %s -> %s (%.1fms blackout)\n", m.Session, m.To, m.BlackoutMs)
	}
	for name, msg := range rep.Failed {
		fmt.Fprintf(&b, "  %s FAILED: %s\n", name, msg)
	}
	resp := &server.Response{ID: req.ID, OK: len(rep.Failed) == 0, Data: data, Output: b.String()}
	if !resp.OK {
		resp.Code = server.CodeError
		resp.Error = fmt.Sprintf("%d sessions failed to migrate off %s", len(rep.Failed), rep.Backend)
	}
	return resp
}

// AdminPing returns the ping verb's pool-summary payload as JSON, for
// lsgate's /healthz.
func (g *Gateway) AdminPing() []byte { return g.pingResp(&server.Request{}).Data }

// AdminBackends returns the backends table as JSON, for /backendz.
func (g *Gateway) AdminBackends() []byte { return g.backendsResp(&server.Request{}).Data }

// Shutdown stops the gateway: close listeners, stop the health loop,
// wait out in-flight forwards (bounded by ctx), drop client conns.
// Stateless: nothing to save.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	lns := make([]net.Listener, 0, len(g.listeners))
	for ln := range g.listeners {
		lns = append(lns, ln)
	}
	g.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	g.stopOnce.Do(func() { close(g.stop) })

	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}

	g.mu.Lock()
	conns := make([]*gconn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
	g.connWG.Wait()
	for _, b := range g.backends {
		b.mu.Lock()
		cli := b.cli
		b.cli = nil
		b.mu.Unlock()
		if cli != nil {
			cli.Close()
		}
	}
	return nil
}
