package gateway_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"livesim/internal/gateway"
	"livesim/internal/server"
)

// Distributed-trace assembly tests: one client-stamped trace id must
// come back from the gateway `trace <id>` verb as one tree spanning
// gateway and backend spans — and when a backend dies mid-trace, the
// surviving subtree must render with explicit incompleteness markers
// instead of erroring.

func traceAssembly(t *testing.T, resp *server.Response) *gateway.TraceAssembly {
	t.Helper()
	if !resp.OK {
		t.Fatalf("trace verb failed: %s (%s)", resp.Error, resp.Code)
	}
	var asm gateway.TraceAssembly
	if err := json.Unmarshal(resp.Data, &asm); err != nil {
		t.Fatalf("trace data: %v", err)
	}
	return &asm
}

func distinctProcs(asm *gateway.TraceAssembly) map[string]bool {
	procs := map[string]bool{}
	for _, s := range asm.Spans {
		procs[s.Proc] = true
	}
	return procs
}

// TestTraceAssemblyAcrossFleet: a traced create must assemble into one
// tree whose spans come from both the gateway and the backend that
// hosted the work, linked parent-to-child across the process boundary.
func TestTraceAssemblyAcrossFleet(t *testing.T) {
	b0 := newTestBackend(t)
	b1 := newTestBackend(t)
	_, addr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()},
	}})
	c := dial(t, addr)

	const trace = "deadbeefcafe0001"
	mustOK(t, c, &server.Request{Session: "t0", Verb: "create", TraceID: trace,
		Files: map[string]string{"top.v": tinyDesign}, Top: "top"})

	tr, err := c.Do(&server.Request{Verb: "trace", Args: []string{trace}})
	if err != nil {
		t.Fatal(err)
	}
	asm := traceAssembly(t, tr)
	if len(asm.Missing) != 0 {
		t.Fatalf("expected complete assembly, missing: %v", asm.Missing)
	}
	procs := distinctProcs(asm)
	if len(procs) < 2 {
		t.Fatalf("expected spans from gateway and backend, got procs %v (spans %d)", procs, len(asm.Spans))
	}
	var gw, be bool
	for p := range procs {
		if strings.HasPrefix(p, "lsgate:") {
			gw = true
		}
		if strings.HasPrefix(p, "livesimd:") {
			be = true
		}
	}
	if !gw || !be {
		t.Fatalf("expected lsgate and livesimd procs, got %v", procs)
	}
	// The backend's request span must parent under a gateway span —
	// that's the cross-process linkage the wire pspan field carries.
	sids := map[string]string{}
	for _, s := range asm.Spans {
		sids[s.SID] = s.Proc
	}
	linked := false
	for _, s := range asm.Spans {
		if strings.HasPrefix(s.Proc, "livesimd:") && s.PSID != "" && strings.HasPrefix(sids[s.PSID], "lsgate:") {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("no backend span parents under a gateway span: %+v", asm.Spans)
	}
	if !strings.Contains(tr.Output, "request") || !strings.Contains(tr.Output, "forward") {
		t.Fatalf("rendered tree missing request/forward spans:\n%s", tr.Output)
	}
}

// TestTracePartialAssembly: halting the backend that holds half the
// trace must not break `trace <id>` — the gateway's surviving spans
// render, and the dead backend shows up as an explicit incomplete-
// assembly note.
func TestTracePartialAssembly(t *testing.T) {
	b0 := newTestBackend(t)
	b1 := newTestBackend(t)
	backends := []*testBackend{b0, b1}
	_, addr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{
		{Addr: b0.addr()}, {Addr: b1.addr()},
	}})
	c := dial(t, addr)

	const trace = "deadbeefcafe0002"
	mustOK(t, c, &server.Request{Session: "t1", Verb: "create", TraceID: trace,
		Files: map[string]string{"top.v": tinyDesign}, Top: "top"})
	owner := primaryOf(t, backends, "t1")
	owner.halt() // takes its in-memory span store (half the trace) with it

	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, err := c.Do(&server.Request{Verb: "trace", Args: []string{trace}})
		if err != nil {
			t.Fatal(err)
		}
		asm := traceAssembly(t, tr)
		if len(asm.Missing) > 0 {
			if len(asm.Spans) == 0 {
				t.Fatalf("gateway's own spans vanished with the backend: %+v", asm)
			}
			for p := range distinctProcs(asm) {
				if !strings.HasPrefix(p, "lsgate:") {
					t.Fatalf("dead backend's spans should be gone, got proc %q", p)
				}
			}
			if !strings.Contains(tr.Output, "incomplete") {
				t.Fatalf("rendered output lacks the incomplete marker:\n%s", tr.Output)
			}
			return
		}
		// The halt may not have been observed yet (the spans query itself
		// is what marks the backend down) — retry until it is.
		if time.Now().After(deadline) {
			t.Fatalf("assembly never reported the dead backend as missing: %+v", asm)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTraceOrphanMarker: a span whose remote parent was never collected
// (here: the client claims a parent sid that exists nowhere) must
// surface as a root flagged with the missing-subtree marker, not vanish
// and not error.
func TestTraceOrphanMarker(t *testing.T) {
	b0 := newTestBackend(t)
	_, addr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{{Addr: b0.addr()}}})
	c := dial(t, addr)

	const trace = "deadbeefcafe0003"
	if _, err := c.Do(&server.Request{Verb: "ping", TraceID: trace, ParentSpan: "feedface-1"}); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Do(&server.Request{Verb: "trace", Args: []string{trace}})
	if err != nil {
		t.Fatal(err)
	}
	asm := traceAssembly(t, tr)
	if len(asm.Spans) == 0 {
		t.Fatal("no spans assembled")
	}
	if !strings.Contains(tr.Output, "missing subtree: parent span feedface-1 not collected") {
		t.Fatalf("rendered tree lacks the missing-subtree marker:\n%s", tr.Output)
	}
}

// TestTraceVerbDisambiguation: the fleet verb must not shadow the
// session-scoped VCD `trace` verb — a session plus non-trace-id args
// still forwards to the backend.
func TestTraceVerbDisambiguation(t *testing.T) {
	b0 := newTestBackend(t)
	_, addr := startGateway(t, gateway.Config{Backends: []gateway.BackendSpec{{Addr: b0.addr()}}})
	c := dial(t, addr)

	createTiny(t, c, "t2")
	// Session trace verb shape (VCD dump args): forwarded to the backend,
	// which answers for the session — not the fleet assembler.
	resp, err := c.Do(&server.Request{Verb: "trace", Session: "t2", Args: []string{"on", "100", "x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		var asm gateway.TraceAssembly
		if resp.Data != nil && json.Unmarshal(resp.Data, &asm) == nil && asm.Trace != "" {
			t.Fatalf("session trace verb was hijacked by the fleet assembler: %+v", resp)
		}
	}
	// Fleet shape: single 16-hex arg, even with a session set (the CLI
	// always sends its default session name).
	tr, err := c.Do(&server.Request{Verb: "trace", Session: "s0", Args: []string{"deadbeefcafe0004"}})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OK {
		t.Fatalf("fleet trace verb with session set failed: %+v", tr)
	}
	if !strings.Contains(tr.Output, "no spans stored anywhere") {
		t.Fatalf("expected empty assembly output, got:\n%s", tr.Output)
	}
}
