package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/obs"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

// BackendSpec names one livesimd the gateway fronts.
type BackendSpec struct {
	// Addr is the NDJSON wire address ("unix:/path" or "host:port") —
	// the identity used for routing, rendezvous hashing and moved
	// tombstones, so it must be the address clients could also reach.
	Addr string
	// AdminAddr, when set, is the backend's admin-plane HTTP address;
	// the health checker then reads /healthz for the full state ladder
	// (recovering, disk_emergency, degraded) instead of inferring from
	// the wire ping alone.
	AdminAddr string
}

// backendState is the health checker's verdict on one backend,
// ordered roughly worst to best.
type backendState int32

const (
	// bsUnknown: never probed successfully (gateway just started).
	bsUnknown backendState = iota
	// bsDown: unreachable — dial or probe failed. Not routable.
	bsDown
	// bsNotReady: reachable but not servable for new placement —
	// recovering sessions or the emergency disk rung. Existing
	// sessions stay routed here (the backend answers with its own
	// typed codes); new ones go elsewhere.
	bsNotReady
	// bsDraining: the backend is shutting down. Routable so in-flight
	// sessions hear the typed draining rejection, never placeable.
	bsDraining
	// bsDegraded: serving, but /healthz reports quarantined or
	// nondurable sessions or disk-ladder engagement. Placeable last.
	bsDegraded
	// bsOK: healthy.
	bsOK
)

func (s backendState) String() string {
	switch s {
	case bsDown:
		return "down"
	case bsNotReady:
		return "not_ready"
	case bsDraining:
		return "draining"
	case bsDegraded:
		return "degraded"
	case bsOK:
		return "ok"
	}
	return "unknown"
}

// backend is the gateway's live view of one livesimd: a lazily dialed
// wire client plus the health checker's latest verdict.
type backend struct {
	spec BackendSpec

	state    atomic.Int32 // backendState
	noPlace  atomic.Bool  // operator drain: excluded from placement while set
	sessions atomic.Int64 // session count from the last successful probe
	// downSince is when the backend was last seen transitioning to
	// bsDown (UnixNano; 0 while up) — the failover sweep's grace clock.
	downSince atomic.Int64

	mu  sync.Mutex
	cli *client.Client
}

func newBackend(spec BackendSpec) *backend {
	return &backend{spec: spec}
}

func (b *backend) addr() string { return b.spec.Addr }

func (b *backend) getState() backendState { return backendState(b.state.Load()) }

// alive: the wire is believed reachable — forward and let the backend
// answer with its own typed codes.
func (b *backend) alive() bool {
	st := b.getState()
	return st != bsDown && st != bsUnknown
}

// placeable: eligible to receive new sessions (create, import,
// migration targets).
func (b *backend) placeable() bool {
	st := b.getState()
	return (st == bsOK || st == bsDegraded) && !b.noPlace.Load()
}

// client returns the live wire client, dialing on first use and after
// a drop. Fail-fast clients on purpose: the gateway is the layer that
// owns retry/re-route policy, so a broken backend conn is discarded
// (dropClient) and the next use re-dials rather than hiding behind a
// client-level redial loop. OverloadRetries is disabled for the same
// reason — an overloaded response must reach the end client with its
// retry_after_ms hint intact, not burn time inside the gateway.
func (b *backend) client() (*client.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cli != nil {
		return b.cli, nil
	}
	c, err := client.DialOptions(b.spec.Addr, client.Options{OverloadRetries: -1})
	if err != nil {
		return nil, err
	}
	b.cli = c
	return c, nil
}

// dropClient discards cli if it is still the backend's current client.
// Closing it fails any calls in flight on it, including the leaked
// waiter a doTimeout left behind.
func (b *backend) dropClient(cli *client.Client) {
	b.mu.Lock()
	if b.cli == cli {
		b.cli = nil
	}
	b.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// doTimeout runs one request with an upper bound. The wire client
// blocks until response or connection loss; a wedged backend must not
// wedge the gateway, so on timeout the caller is released and must
// dropClient (closing the conn reaps the abandoned call).
func doTimeout(cli *client.Client, req *server.Request, d time.Duration) (*server.Response, error) {
	type result struct {
		resp *server.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := cli.Do(req)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timer.C:
		return nil, fmt.Errorf("backend request timed out after %v", d)
	}
}

// probe refreshes the backend's state: a wire ping for liveness and
// the draining flag, plus /healthz when an admin address is known for
// the states the ping cannot see (recovering, disk rungs, degraded).
func (g *Gateway) probe(b *backend) {
	cli, err := b.client()
	if err != nil {
		g.setBackendState(b, bsDown, err.Error())
		return
	}
	resp, err := doTimeout(cli, &server.Request{Verb: "ping"}, g.probeTimeout())
	if err != nil {
		b.dropClient(cli)
		g.setBackendState(b, bsDown, err.Error())
		return
	}
	var pd struct {
		Sessions int  `json:"sessions"`
		Draining bool `json:"draining"`
	}
	if resp.Data != nil {
		json.Unmarshal(resp.Data, &pd)
	}
	b.sessions.Store(int64(pd.Sessions))
	st := bsOK
	if pd.Draining {
		st = bsDraining
	} else if b.spec.AdminAddr != "" {
		if adm, ok := adminState(b.spec.AdminAddr, g.probeTimeout()); ok {
			st = adm
		}
	}
	g.setBackendState(b, st, "")
}

// adminState maps the backend's /healthz status string onto the
// gateway's ladder. A failed scrape is not evidence of anything (the
// wire ping just succeeded), so it reports !ok and the caller keeps
// the ping verdict.
func adminState(addr string, timeout time.Duration) (backendState, bool) {
	hc := http.Client{Timeout: timeout}
	resp, err := hc.Get("http://" + addr + "/healthz")
	if err != nil {
		return bsUnknown, false
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return bsUnknown, false
	}
	switch body.Status {
	case "ok":
		return bsOK, true
	case "degraded":
		return bsDegraded, true
	case "draining":
		return bsDraining, true
	case "recovering", "disk_emergency":
		return bsNotReady, true
	}
	return bsUnknown, false
}

// setBackendState records a probe verdict, logging transitions and
// kicking the reconcile sweep when a backend comes back from the dead
// — the moment resurrected session copies could reappear.
func (g *Gateway) setBackendState(b *backend, st backendState, why string) {
	prev := backendState(b.state.Swap(int32(st)))
	if st == bsDown && prev != bsDown {
		b.downSince.Store(time.Now().UnixNano())
	} else if st != bsDown && prev == bsDown {
		b.downSince.Store(0)
	}
	if prev == st {
		return
	}
	msg := fmt.Sprintf("%s -> %s", prev, st)
	if why != "" {
		msg += ": " + why
	}
	g.events.Add("backend_state", "", b.addr()+": "+msg)
	g.log.Info("backend state", obs.Str("backend", b.addr()),
		obs.Str("from", prev.String()), obs.Str("to", st.String()))
	wasAlive := prev != bsDown && prev != bsUnknown
	if !wasAlive && st != bsDown {
		go g.reconcile(b)
	}
}
