// Package hostmodel is the synthetic host machine used to reproduce
// Table VII of the paper. The paper measures hardware performance
// counters (IPC, I$/D$/BR MPKI) of the *simulator process* on an
// i7-6700K; this reproduction interprets bytecode, so the equivalent
// instruction and data streams are the executed VM operations and their
// modeled addresses. Running a set-associative I-cache, D-cache and a
// gshare branch predictor over those streams reproduces the paper's
// structural result: the flat (Verilator-style) simulator's replicated
// code thrashes the I-cache as the design grows, while LiveSim's shared
// objects keep a constant instruction footprint.
package hostmodel

import (
	"fmt"

	"livesim/internal/vm"
)

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets      uint64
	ways      int
	lineShift uint
	tags      [][]uint64 // [set][way], tag+1 (0 = invalid)
	age       [][]uint64 // LRU stamps
	clock     uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given geometry. size and line are bytes;
// size must be a multiple of ways*line.
func NewCache(size, ways, line int) *Cache {
	sets := size / (ways * line)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("hostmodel: bad cache geometry %d/%d/%d", size, ways, line))
	}
	shift := uint(0)
	for 1<<shift != line {
		shift++
	}
	c := &Cache{sets: uint64(sets), ways: ways, lineShift: shift}
	c.tags = make([][]uint64, sets)
	c.age = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.age[i] = make([]uint64, ways)
	}
	return c
}

// Access touches addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	line := addr >> c.lineShift
	set := line & (c.sets - 1)
	tag := line + 1
	tags, age := c.tags[set], c.age[set]
	for w := 0; w < c.ways; w++ {
		if tags[w] == tag {
			age[w] = c.clock
			return true
		}
	}
	c.Misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if age[w] < age[victim] {
			victim = w
		}
	}
	tags[victim] = tag
	age[victim] = c.clock
	return false
}

// GShare is a global-history two-bit branch predictor.
type GShare struct {
	table []uint8
	hist  uint64
	mask  uint64

	Branches    uint64
	Mispredicts uint64
}

// NewGShare builds a predictor with 2^bits counters.
func NewGShare(bits int) *GShare {
	return &GShare{table: make([]uint8, 1<<bits), mask: (1 << bits) - 1}
}

// Predict consumes one executed branch and reports whether the predictor
// got it right.
func (g *GShare) Predict(pc uint64, taken bool) bool {
	g.Branches++
	idx := ((pc >> 2) ^ g.hist) & g.mask
	ctr := g.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		g.table[idx] = ctr + 1
	}
	if !taken && ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.hist = (g.hist<<1 | b2u(taken)) & g.mask
	correct := pred == taken
	if !correct {
		g.Mispredicts++
	}
	return correct
}

// Host bundles the modeled core: an i7-6700K-like L1 pair and predictor.
type Host struct {
	IC *Cache
	DC *Cache
	BP *GShare

	Instrs uint64
}

// NewHost builds the default host model: 32 KB 8-way L1I, 32 KB 8-way
// L1D, 64 B lines, 12-bit gshare.
func NewHost() *Host {
	return &Host{
		IC: NewCache(32*1024, 8, 64),
		DC: NewCache(32*1024, 8, 64),
		BP: NewGShare(12),
	}
}

// Instr implements vm.Profiler.
func (h *Host) Instr(codeAddr uint64, isBranch, taken bool) {
	h.Instrs++
	h.IC.Access(codeAddr)
	if isBranch {
		h.BP.Predict(codeAddr, taken)
	}
}

// Data implements vm.Profiler.
func (h *Host) Data(addr uint64, write bool) {
	h.DC.Access(addr)
}

// Metrics summarizes a profiled run in Table VII's units.
type Metrics struct {
	Instrs uint64
	IPC    float64
	IMPKI  float64 // I-cache misses per kilo-instruction
	DMPKI  float64
	BRMPKI float64 // branch mispredicts per kilo-instruction
}

// Modeled pipeline parameters for the IPC estimate: a ~4-wide core with
// L1-miss and mispredict penalties in the L2-hit range.
const (
	baseCPI       = 0.30
	l1MissPenalty = 12.0
	brMissPenalty = 14.0
)

// Metrics computes the summary counters.
func (h *Host) Metrics() Metrics {
	m := Metrics{Instrs: h.Instrs}
	if h.Instrs == 0 {
		return m
	}
	k := float64(h.Instrs) / 1000.0
	m.IMPKI = float64(h.IC.Misses) / k
	m.DMPKI = float64(h.DC.Misses) / k
	m.BRMPKI = float64(h.BP.Mispredicts) / k
	cpi := baseCPI +
		(m.IMPKI/1000.0)*l1MissPenalty +
		(m.DMPKI/1000.0)*l1MissPenalty +
		(m.BRMPKI/1000.0)*brMissPenalty
	m.IPC = 1.0 / cpi
	return m
}

// String renders the metrics like a Table VII column.
func (m Metrics) String() string {
	return fmt.Sprintf("IPC %.2f  I$ MPKI %.2f  D$ MPKI %.2f  BR MPKI %.2f",
		m.IPC, m.IMPKI, m.DMPKI, m.BRMPKI)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Ensure Host satisfies the profiler contract.
var _ vm.Profiler = (*Host)(nil)
