package hostmodel

import (
	"testing"
	"testing/quick"
)

func TestCacheHitsOnReuse(t *testing.T) {
	c := NewCache(32*1024, 8, 64)
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access must hit")
	}
	if !c.Access(0x103F) {
		t.Error("same line must hit")
	}
	if c.Access(0x1040) {
		t.Error("next line must miss")
	}
	if c.Misses != 2 || c.Accesses != 4 {
		t.Errorf("stats %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets, 2 ways
	// Three lines mapping to the same set: strides of sets*line = 512.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(d) // evicts a (LRU)
	if c.Access(a) {
		t.Error("a should have been evicted")
	}
	if !c.Access(d) {
		t.Error("d should still be resident")
	}
}

func TestCacheWorkingSetEffect(t *testing.T) {
	// A working set within capacity has near-zero steady-state misses; a
	// working set 4x capacity misses constantly — the Table VII mechanism.
	small := NewCache(32*1024, 8, 64)
	big := NewCache(32*1024, 8, 64)
	// Warm the small cache once so only steady-state misses count.
	for a := uint64(0); a < 16*1024; a += 64 {
		small.Access(a)
	}
	coldMisses := small.Misses
	for round := 0; round < 20; round++ {
		for a := uint64(0); a < 16*1024; a += 64 {
			small.Access(a)
		}
		for a := uint64(0); a < 128*1024; a += 64 {
			big.Access(a)
		}
	}
	bigRate := float64(big.Misses) / float64(big.Accesses)
	if small.Misses != coldMisses {
		t.Errorf("in-capacity steady-state misses: %d extra", small.Misses-coldMisses)
	}
	if bigRate < 0.9 {
		t.Errorf("thrashing miss rate %.3f (want ~1)", bigRate)
	}
}

func TestGSharePredictsLoops(t *testing.T) {
	g := NewGShare(12)
	// A loop branch taken 63 of every 64 times is highly predictable.
	for i := 0; i < 64*100; i++ {
		g.Predict(0x400, i%64 != 63)
	}
	rate := float64(g.Mispredicts) / float64(g.Branches)
	if rate > 0.08 {
		t.Errorf("loop mispredict rate %.3f", rate)
	}
	// Alternating pattern is learnable by history.
	g2 := NewGShare(12)
	for i := 0; i < 4000; i++ {
		g2.Predict(0x800, i%2 == 0)
	}
	if rate := float64(g2.Mispredicts) / float64(g2.Branches); rate > 0.1 {
		t.Errorf("alternating mispredict rate %.3f", rate)
	}
}

func TestHostMetrics(t *testing.T) {
	h := NewHost()
	if m := h.Metrics(); m.Instrs != 0 || m.IPC != 0 {
		t.Errorf("empty metrics %+v", m)
	}
	// Perfectly cached straight-line code: IPC near 1/baseCPI.
	for i := 0; i < 100000; i++ {
		h.Instr(0x1000+uint64(i%8)*32, false, false)
		h.Data(0x2000, false)
	}
	m := h.Metrics()
	if m.IPC < 3.0 {
		t.Errorf("cached IPC %.2f, want near %.2f", m.IPC, 1.0/baseCPI)
	}
	if m.IMPKI > 0.1 || m.DMPKI > 0.1 {
		t.Errorf("unexpected misses %+v", m)
	}
	if m.String() == "" {
		t.Error("empty string")
	}

	// Thrashing instruction stream: IPC collapses.
	h2 := NewHost()
	for i := 0; i < 100000; i++ {
		h2.Instr(uint64(i)*64%(4*1024*1024), false, false)
		h2.Data(0x2000, false)
	}
	m2 := h2.Metrics()
	if m2.IMPKI < 500 {
		t.Errorf("thrash IMPKI %.1f", m2.IMPKI)
	}
	if m2.IPC > m.IPC/4 {
		t.Errorf("thrash IPC %.2f vs cached %.2f", m2.IPC, m.IPC)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewCache(1000, 3, 64)
}

// Property: miss count never exceeds access count, and a second pass over
// a small footprint is all hits.
func TestCacheProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(4096, 4, 64)
		for _, a := range addrs {
			c.Access(uint64(a) % 2048) // footprint 2 KB < 4 KB capacity
		}
		if c.Misses > c.Accesses {
			return false
		}
		before := c.Misses
		for _, a := range addrs {
			c.Access(uint64(a) % 2048)
		}
		return c.Misses == before || len(addrs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
