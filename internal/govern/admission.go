package govern

import (
	"sync/atomic"
	"time"
)

// Admission is the process-wide in-flight budget. Every admitted
// request holds `cost` units (verb-weighted: a 200-cycle run is not a
// status poll) from TryAcquire until Release; when the budget is
// exhausted new work is rejected with a retry-after hint sized to the
// overshoot, so the hint grows as the daemon falls further behind.
//
// This layers ON TOP of the per-session bounded queues: queues bound
// how much work one session can stage, the admission budget bounds how
// much work the whole process has accepted. Both are needed — 64
// sessions × 32-deep queues is 2048 staged requests on one core unless
// something global says no.
type Admission struct {
	budget   int64
	inflight atomic.Int64
	rejects  atomic.Int64
	// RetryBase is the hint for an infinitesimal overshoot; the hint
	// scales linearly with (inflight-budget)/budget and is capped at
	// RetryCap. Zero values take defaults (25ms base, 1s cap).
	RetryBase time.Duration
	RetryCap  time.Duration
}

// NewAdmission returns an admission controller with the given budget in
// cost units. budget <= 0 disables admission control entirely (every
// TryAcquire admits) — the nil-cost configuration for tests and
// single-user runs.
func NewAdmission(budget int64) *Admission {
	return &Admission{budget: budget, RetryBase: 25 * time.Millisecond, RetryCap: time.Second}
}

// Budget returns the configured budget (0 = unlimited).
func (a *Admission) Budget() int64 {
	if a == nil {
		return 0
	}
	return a.budget
}

// TryAcquire attempts to admit a request of the given cost. On success
// it returns (true, 0) and the caller MUST Release(cost) exactly once
// when the request finishes. On rejection it returns (false, hint)
// where hint is the suggested client backoff before retrying.
//
// A request is never rejected for being individually bigger than the
// budget — if the daemon is idle, the heaviest verb still runs (the
// budget bounds concurrency, not request size).
func (a *Admission) TryAcquire(cost int64) (bool, time.Duration) {
	if a == nil || a.budget <= 0 {
		return true, 0
	}
	if cost < 1 {
		cost = 1
	}
	for {
		cur := a.inflight.Load()
		if cur > 0 && cur+cost > a.budget {
			a.rejects.Add(1)
			return false, a.retryAfter(cur + cost)
		}
		if a.inflight.CompareAndSwap(cur, cur+cost) {
			return true, 0
		}
	}
}

// Release returns cost units to the budget. It must pair 1:1 with a
// successful TryAcquire.
func (a *Admission) Release(cost int64) {
	if a == nil || a.budget <= 0 {
		return
	}
	if cost < 1 {
		cost = 1
	}
	if n := a.inflight.Add(-cost); n < 0 {
		// Defensive: an unbalanced Release would otherwise silently
		// widen the budget forever. Clamp and keep serving.
		a.inflight.CompareAndSwap(n, 0)
	}
}

// Inflight returns the currently-held cost units.
func (a *Admission) Inflight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// Rejects returns the cumulative count of rejected acquisitions.
func (a *Admission) Rejects() int64 {
	if a == nil {
		return 0
	}
	return a.rejects.Load()
}

// retryAfter sizes the backoff hint to the overshoot: just past the
// budget → ~base, 2× over → ~2×base+, always within [base, cap]. The
// client adds jitter; the server hint is deterministic so tests can
// assert on it.
func (a *Admission) retryAfter(wanted int64) time.Duration {
	base, cap := a.RetryBase, a.RetryCap
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	over := float64(wanted-a.budget) / float64(a.budget)
	ns := float64(base) * (1 + 4*over)
	if ns >= float64(cap) { // compare in float: huge overshoots overflow Duration
		return cap
	}
	d := time.Duration(ns)
	if d < base {
		d = base
	}
	return d
}
