package govern

import (
	"fmt"
	"sync"
	"syscall"
)

// PressureLevel is one rung of the disk-pressure ladder. Rungs are
// ordered: every degradation active at Elevated stays active at
// Critical, and so on — clearing pressure walks back down through the
// same rungs (with hysteresis so a byte of freed space doesn't flap
// the level).
type PressureLevel int

const (
	// LevelOK: full durability — inline fsync, normal checkpoint
	// cadence, everything journaled.
	LevelOK PressureLevel = iota
	// LevelElevated: disk is filling. WAL switches to group-commit
	// fsync, checkpoint watermark cadence widens, redundant checkpoint
	// backups are GC'd. Durability window widens but nothing is lost.
	LevelElevated
	// LevelCritical: writes may start failing. Journaling pauses and
	// sessions are marked nondurable (visible in /healthz, sessions,
	// and the event ring); committed in-memory state is preserved and
	// re-anchored into the journal once space returns.
	LevelCritical
	// LevelEmergency: no room to even checkpoint. Mutations are
	// rejected with ErrDiskFull (reads still work) so the daemon never
	// accepts state changes it has no way to make durable or recover.
	LevelEmergency
)

func (l PressureLevel) String() string {
	switch l {
	case LevelOK:
		return "ok"
	case LevelElevated:
		return "elevated"
	case LevelCritical:
		return "critical"
	case LevelEmergency:
		return "emergency"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Watermarks are the free-space fractions (free/total) at which each
// rung engages. A level engages when free drops BELOW its watermark and
// disengages when free rises back above watermark*(1+Hysteresis), so a
// workload oscillating around a threshold doesn't toggle degradations
// every probe.
type Watermarks struct {
	Elevated  float64 // default 0.20: <20% free → elevated
	Critical  float64 // default 0.10: <10% free → critical
	Emergency float64 // default 0.03: <3% free → emergency
	// Hysteresis is the fractional margin required to step back down
	// (default 0.25: elevated at <20% clears at >25% of the 20% mark,
	// i.e. 25% free... no — clears at free > 20%*1.25 = 25%).
	Hysteresis float64
}

// DefaultWatermarks returns the stock ladder thresholds.
func DefaultWatermarks() Watermarks {
	return Watermarks{Elevated: 0.20, Critical: 0.10, Emergency: 0.03, Hysteresis: 0.25}
}

// DiskProbe reports free and total bytes for the filesystem holding
// path. The default uses Statfs; tests and fault injection substitute
// their own.
type DiskProbe func(path string) (free, total uint64, err error)

// StatfsProbe is the production DiskProbe: Statfs on the state dir,
// counting blocks available to unprivileged callers (Bavail, not
// Bfree) because that is what a write from the daemon can actually
// use.
func StatfsProbe(path string) (free, total uint64, err error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, 0, err
	}
	bs := uint64(st.Bsize)
	return uint64(st.Bavail) * bs, uint64(st.Blocks) * bs, nil
}

// DiskMonitor classifies successive (free, total) probes into a
// PressureLevel with hysteresis. It holds no goroutine of its own —
// the server's governor ticker calls Eval at its own cadence, and
// tests call it with synthetic numbers.
type DiskMonitor struct {
	mu    sync.Mutex
	wm    Watermarks
	probe DiskProbe
	path  string
	level PressureLevel
	free  uint64
	total uint64
}

// NewDiskMonitor builds a monitor over path using probe (nil → Statfs)
// and watermarks (zero-value → defaults).
func NewDiskMonitor(path string, probe DiskProbe, wm Watermarks) *DiskMonitor {
	if probe == nil {
		probe = StatfsProbe
	}
	if wm.Elevated == 0 && wm.Critical == 0 && wm.Emergency == 0 {
		wm = DefaultWatermarks()
	}
	if wm.Hysteresis == 0 {
		wm.Hysteresis = 0.25
	}
	return &DiskMonitor{wm: wm, probe: probe, path: path}
}

// Eval probes the disk and returns the (possibly unchanged) pressure
// level plus whether it changed since the previous Eval. A probe error
// leaves the level where it was — a transient statfs failure must not
// drop degradations that a genuinely full disk earned.
func (m *DiskMonitor) Eval() (level PressureLevel, changed bool, err error) {
	free, total, err := m.probe(m.path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		return m.level, false, err
	}
	m.free, m.total = free, total
	next := m.classify(free, total)
	changed = next != m.level
	m.level = next
	return next, changed, nil
}

// Level returns the last evaluated level without probing.
func (m *DiskMonitor) Level() PressureLevel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// Free returns the last probed (free, total) bytes.
func (m *DiskMonitor) Free() (free, total uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.free, m.total
}

// classify maps a free fraction to a rung, honoring hysteresis
// relative to the current level. Escalation is immediate (a filling
// disk is an emergency in the making); de-escalation one rung at a
// time requires clearing the rung's watermark by the hysteresis
// margin.
func (m *DiskMonitor) classify(free, total uint64) PressureLevel {
	if total == 0 {
		return m.level
	}
	frac := float64(free) / float64(total)
	raw := LevelOK
	switch {
	case frac < m.wm.Emergency:
		raw = LevelEmergency
	case frac < m.wm.Critical:
		raw = LevelCritical
	case frac < m.wm.Elevated:
		raw = LevelElevated
	}
	if raw >= m.level {
		return raw // escalate (or hold) immediately
	}
	// De-escalate one rung at a time; each step requires clearing the
	// rung's own engage watermark by the hysteresis margin, so a big
	// reclaim drops several rungs in one probe while a marginal one
	// holds inside the band.
	lvl := m.level
	for lvl > raw {
		mark := 0.0
		switch lvl {
		case LevelEmergency:
			mark = m.wm.Emergency
		case LevelCritical:
			mark = m.wm.Critical
		case LevelElevated:
			mark = m.wm.Elevated
		}
		if frac <= mark*(1+m.wm.Hysteresis) {
			break
		}
		lvl--
	}
	return lvl
}
