// Package govern is livesimd's resource-governance plane: the process-
// wide mechanisms that make one daemon degrade predictably instead of
// falling over when demand outruns CPU, disk or memory.
//
// Three governors live here, each consumed by internal/server:
//
//   - Admission: a global in-flight budget weighted by verb cost, layered
//     on top of the per-session bounded queues. The queues protect one
//     session from wedging the daemon; the admission budget protects the
//     daemon from 64 sessions' worth of full queues landing on one core.
//     Over-budget requests are rejected with ErrOverloaded and a
//     retry_after_ms hint proportional to the overshoot, so well-behaved
//     clients back off instead of hammering.
//
//   - the disk-pressure ladder (Ladder / DiskMonitor): free space under
//     the state directory is classified into rungs — OK, Elevated,
//     Critical, Emergency — with hysteresis so the level doesn't flap at
//     a threshold. The server maps rungs to degradations: wider
//     checkpoint cadence and group-commit fsync (Elevated), journaling
//     paused and sessions marked nondurable (Critical), mutations
//     rejected (Emergency). ENOSPC becomes a ladder, not a cliff.
//
//   - Retry: the one retry-with-jittered-backoff loop shared by WAL
//     appends and checkpoint saves (both previously hand-rolled their
//     own), and the jitter primitive the client's redial backoff uses so
//     a daemon restart doesn't make every client reconnect in lockstep.
//
// Memory accounting rides alongside: MemEstimate is the per-session
// byte-estimate shape (checkpoint history + WAL tail + pipe state) the
// server feeds into session_mem_bytes gauges and its shed-idle-sessions
// eviction policy.
package govern

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrOverloaded is the typed admission rejection: the process-wide
// in-flight budget is exhausted. It always travels with a retry-after
// hint (Admission.TryAcquire), and the wire protocol carries the hint as
// retry_after_ms so clients can back off without parsing error text.
var ErrOverloaded = errors.New("server overloaded (in-flight budget exhausted)")

// ErrDiskFull is the typed emergency-rung rejection: the state
// directory is so low on space that accepting another mutation could
// lose data that cannot be journaled or checkpointed.
var ErrDiskFull = errors.New("state disk critically full; mutations rejected")

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac],
// drawn from rng (or the shared source when rng is nil). Every backoff
// in the system routes through this so independent clients (or retry
// loops) spread out instead of synchronizing: after a daemon restart,
// N clients sleeping exactly 50ms, 100ms, 200ms... reconnect as one
// thundering herd, while ±20% jitter decorrelates them within a couple
// of attempts.
func Jitter(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		u = sharedFloat64()
	}
	f := 1 - frac + 2*frac*u
	return time.Duration(float64(d) * f)
}

var (
	sharedMu  sync.Mutex
	sharedRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func sharedFloat64() float64 {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	return sharedRng.Float64()
}

// NewRand returns a private jitter source. Each client seeds its own
// from the shared source so two clients created in the same nanosecond
// still diverge.
func NewRand() *rand.Rand {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	return rand.New(rand.NewSource(sharedRng.Int63()))
}

// Retry runs fn up to attempts times, sleeping a jittered exponential
// backoff (base, doubling, ±20%) between failures, and returns the last
// error. It is the shared retry loop for transient-IO paths — WAL
// appends and checkpoint saves — which previously each hand-rolled
// their own un-jittered versions. sleep is swappable for tests; nil
// uses time.Sleep.
func Retry(attempts int, base time.Duration, sleep func(time.Duration), fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	delay := base
	for i := 0; i < attempts; i++ {
		if i > 0 && delay > 0 {
			sleep(Jitter(delay, 0.2, nil))
			delay *= 2
		}
		if err = fn(); err == nil {
			return nil
		}
	}
	return err
}

// MemEstimate is one session's resource-footprint estimate, in bytes.
// The numbers are estimates by design — checkpoint encoding runs on a
// background goroutine, so a just-taken checkpoint is costed at its
// in-memory state size until the encoded form lands — but they are
// consistent estimates: good enough to rank sessions for shedding and
// to alarm on growth, which is all the eviction policy needs.
type MemEstimate struct {
	// Checkpoints is the in-memory checkpoint history (encoded blobs
	// plus live state copies).
	Checkpoints uint64 `json:"checkpoints"`
	// WAL is the on-disk journal tail size (it is re-read into memory on
	// recovery, and it is the disk footprint the ladder governs).
	WAL uint64 `json:"wal"`
	// State is the live pipe state (register slots + memories).
	State uint64 `json:"state"`
}

// Total sums the components.
func (m MemEstimate) Total() uint64 { return m.Checkpoints + m.WAL + m.State }
