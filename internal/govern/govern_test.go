package govern

import (
	"errors"
	"testing"
	"time"
)

func TestAdmissionBasic(t *testing.T) {
	a := NewAdmission(10)
	ok, _ := a.TryAcquire(6)
	if !ok {
		t.Fatal("first acquire should admit")
	}
	ok, _ = a.TryAcquire(4)
	if !ok {
		t.Fatal("exactly-at-budget acquire should admit")
	}
	ok, hint := a.TryAcquire(1)
	if ok {
		t.Fatal("over-budget acquire should reject")
	}
	if hint <= 0 {
		t.Fatalf("rejection must carry a positive retry hint, got %v", hint)
	}
	if got := a.Rejects(); got != 1 {
		t.Fatalf("rejects = %d, want 1", got)
	}
	a.Release(4)
	if ok, _ := a.TryAcquire(4); !ok {
		t.Fatal("acquire after release should admit")
	}
	a.Release(6)
	a.Release(4)
	if n := a.Inflight(); n != 0 {
		t.Fatalf("inflight after balanced releases = %d, want 0", n)
	}
}

func TestAdmissionOversizedRequestAdmittedWhenIdle(t *testing.T) {
	a := NewAdmission(4)
	// A single request heavier than the whole budget must still run on
	// an idle daemon: the budget bounds concurrency, not request size.
	ok, _ := a.TryAcquire(100)
	if !ok {
		t.Fatal("oversized request on idle daemon should admit")
	}
	if ok, _ := a.TryAcquire(1); ok {
		t.Fatal("anything else while oversized request holds should reject")
	}
	a.Release(100)
	if ok, _ := a.TryAcquire(1); !ok {
		t.Fatal("acquire after oversized release should admit")
	}
}

func TestAdmissionDisabledAndNil(t *testing.T) {
	for _, a := range []*Admission{nil, NewAdmission(0), NewAdmission(-5)} {
		for i := 0; i < 100; i++ {
			if ok, hint := a.TryAcquire(50); !ok || hint != 0 {
				t.Fatalf("disabled admission rejected (ok=%v hint=%v)", ok, hint)
			}
		}
		a.Release(50)
	}
}

func TestAdmissionRetryHintScalesWithOvershoot(t *testing.T) {
	a := NewAdmission(10)
	a.TryAcquire(10)
	_, small := a.TryAcquire(1)
	_, big := a.TryAcquire(40)
	if big <= small {
		t.Fatalf("hint should grow with overshoot: small=%v big=%v", small, big)
	}
	if big > a.RetryCap {
		t.Fatalf("hint %v exceeds cap %v", big, a.RetryCap)
	}
	// Enormous overshoot clamps at the cap.
	_, huge := a.TryAcquire(1 << 40)
	if huge != a.RetryCap {
		t.Fatalf("huge overshoot hint = %v, want cap %v", huge, a.RetryCap)
	}
}

func TestAdmissionUnbalancedReleaseClamps(t *testing.T) {
	a := NewAdmission(4)
	a.Release(100) // buggy caller; must not widen the budget
	if n := a.Inflight(); n != 0 {
		t.Fatalf("inflight after stray release = %d, want 0", n)
	}
	ok, _ := a.TryAcquire(4)
	if !ok {
		t.Fatal("budget should be intact after stray release")
	}
	if ok, _ := a.TryAcquire(4); ok {
		t.Fatal("budget should not have widened")
	}
}

func TestJitterBounds(t *testing.T) {
	rng := NewRand()
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := Jitter(base, 0.2, rng)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jitter out of ±20%% band: %v", d)
		}
	}
	if d := Jitter(base, 0, rng); d != base {
		t.Fatalf("zero-frac jitter should be identity, got %v", d)
	}
	if d := Jitter(0, 0.2, rng); d != 0 {
		t.Fatalf("zero-duration jitter should be identity, got %v", d)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	var slept []time.Duration
	err := Retry(5, 10*time.Millisecond, func(d time.Duration) { slept = append(slept, d) }, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(slept))
	}
	// Doubling with ±20% jitter: first ∈ [8,12]ms, second ∈ [16,24]ms.
	if slept[0] < 8*time.Millisecond || slept[0] > 12*time.Millisecond {
		t.Fatalf("first sleep %v outside jittered base band", slept[0])
	}
	if slept[1] < 16*time.Millisecond || slept[1] > 24*time.Millisecond {
		t.Fatalf("second sleep %v outside doubled band", slept[1])
	}
}

func TestRetryExhaustsAndReturnsLastError(t *testing.T) {
	want := errors.New("still broken")
	calls := 0
	err := Retry(3, time.Millisecond, func(time.Duration) {}, func() error {
		calls++
		return want
	})
	if !errors.Is(err, want) {
		t.Fatalf("Retry = %v, want %v", err, want)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Degenerate attempts still run once.
	calls = 0
	if err := Retry(0, 0, func(time.Duration) {}, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("attempts=0: err=%v calls=%d", err, calls)
	}
}

func TestDiskLadderEscalationAndHysteresis(t *testing.T) {
	free := uint64(1000) // per-mille of a fixed total=1000
	probe := func(string) (uint64, uint64, error) { return free, 1000, nil }
	m := NewDiskMonitor("/ignored", probe, DefaultWatermarks())

	step := func(f uint64, want PressureLevel) {
		t.Helper()
		free = f
		lvl, _, err := m.Eval()
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		if lvl != want {
			t.Fatalf("free=%d‰: level=%v, want %v", f, lvl, want)
		}
	}

	step(1000, LevelOK)
	step(210, LevelOK)       // above elevated watermark (20%)
	step(190, LevelElevated) // <20% engages
	step(210, LevelElevated) // inside hysteresis band (needs >25%)
	step(260, LevelOK)       // cleared 20%*1.25
	step(90, LevelCritical)  // skips straight past elevated
	step(20, LevelEmergency)
	step(37, LevelEmergency) // >3% but inside emergency band (needs >3.75%)
	step(50, LevelCritical)  // cleared emergency band, still <10%*1.25
	step(110, LevelCritical) // inside critical band (needs >12.5%)
	step(130, LevelElevated) // cleared critical band, still <25%
	step(400, LevelOK)       // big reclaim drops the rest in one probe
	step(10, LevelEmergency) // immediate re-escalation
	step(500, LevelOK)       // multi-rung drop emergency→OK in one probe
}

func TestDiskMonitorProbeErrorHoldsLevel(t *testing.T) {
	fail := false
	free := uint64(1)
	probe := func(string) (uint64, uint64, error) {
		if fail {
			return 0, 0, errors.New("statfs: boom")
		}
		return free, 100, nil
	}
	m := NewDiskMonitor("x", probe, DefaultWatermarks())
	if lvl, _, _ := m.Eval(); lvl != LevelEmergency {
		t.Fatalf("level = %v, want emergency", lvl)
	}
	fail = true
	lvl, changed, err := m.Eval()
	if err == nil {
		t.Fatal("expected probe error")
	}
	if lvl != LevelEmergency || changed {
		t.Fatalf("probe error must hold level: lvl=%v changed=%v", lvl, changed)
	}
}

func TestStatfsProbeOnRealDir(t *testing.T) {
	dir := t.TempDir()
	freeB, total, err := StatfsProbe(dir)
	if err != nil {
		t.Fatalf("StatfsProbe: %v", err)
	}
	if total == 0 {
		t.Fatal("total = 0")
	}
	if freeB > total {
		t.Fatalf("free %d > total %d", freeB, total)
	}
}

func TestPressureLevelString(t *testing.T) {
	want := map[PressureLevel]string{
		LevelOK: "ok", LevelElevated: "elevated", LevelCritical: "critical", LevelEmergency: "emergency",
	}
	for lvl, s := range want {
		if lvl.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(lvl), lvl.String(), s)
		}
	}
}

func TestMemEstimateTotal(t *testing.T) {
	m := MemEstimate{Checkpoints: 10, WAL: 20, State: 30}
	if m.Total() != 60 {
		t.Fatalf("Total = %d, want 60", m.Total())
	}
}
