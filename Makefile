# Tier-1 verification plus the race-enabled run this repo treats as the
# pre-merge bar. `make check` is what CI (and every PR) should run.

GO ?= go

.PHONY: check vet build test race bench fuzz-smoke serve-smoke crash-recovery-smoke admin-smoke profile-smoke overload-smoke fleet-smoke failover-smoke trace-smoke

check: vet build race fuzz-smoke serve-smoke crash-recovery-smoke admin-smoke profile-smoke overload-smoke fleet-smoke failover-smoke trace-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Tier-1 as recorded in ROADMAP.md.
test:
	$(GO) build ./... && $(GO) test ./...

# The documented pre-merge bar: tier-1 plus the race detector, which
# exercises the background checkpoint writers, verification workers and
# the concurrent metrics registry.
race:
	$(GO) test -race ./...

# Small-configuration benchmarks (cmd/lsbench runs the full sweeps).
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Short fuzz runs over the checkpoint and journal decoders (Go allows
# one -fuzz target per invocation). ~10s each keeps this viable in CI
# while still churning hundreds of thousands of corrupted inputs.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeState -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFile -fuzztime=$(FUZZTIME) ./internal/checkpoint/
	$(GO) test -run='^$$' -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run='^$$' -fuzz=FuzzTransferDecode -fuzztime=$(FUZZTIME) ./internal/transfer/
	$(GO) test -run='^$$' -fuzz=FuzzReplicaFrameDecode -fuzztime=$(FUZZTIME) ./internal/replica/

# End-to-end server smoke: scripted livesim session against a livesimd
# on a unix socket, then a SIGTERM graceful-drain assertion.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# End-to-end durability smoke: SIGKILL a livesimd mid-session, restart
# it on the same state dir, assert journal replay restores the session.
crash-recovery-smoke:
	GO="$(GO)" sh scripts/crash_recovery_smoke.sh

# Observability-plane smoke: livesimd with -admin-addr, assert /healthz,
# /metrics (server + per-session families) and /eventsz answer sanely.
admin-smoke:
	GO="$(GO)" sh scripts/admin_smoke.sh

# Simulation-core profiler smoke: profile a session over the wire,
# assert `profile report` and /profilez agree on what they profiled.
profile-smoke:
	GO="$(GO)" sh scripts/profile_smoke.sh

# Resource-governance smoke: lsbench -overload (typed rejections +
# recovery at 4x admission capacity), then a real livesimd under a
# forced critical disk rung (NONDURABLE session, degraded /healthz,
# clean SIGTERM drain).
overload-smoke:
	GO="$(GO)" sh scripts/overload_smoke.sh

# Fleet smoke: two livesimd behind an lsgate over unix sockets — place a
# session through the gateway, live-migrate it, SIGKILL the migration
# source, assert the session keeps answering with nothing lost.
fleet-smoke:
	GO="$(GO)" sh scripts/fleet_smoke.sh

# Failover smoke: two livesimd behind a replicating lsgate — SIGKILL the
# session's primary, assert the hot standby is promoted with zero acked
# mutations lost and that the resurrected corpse is fenced.
failover-smoke:
	GO="$(GO)" sh scripts/failover_smoke.sh

# Tracing smoke: replicated mutation through the fleet, assert
# `trace <id>` assembles one tree spanning gateway, primary and standby;
# SIGKILL a backend, assert it left a parseable blackbox-*.jsonl and the
# assembly degrades to a marked-incomplete partial tree.
trace-smoke:
	GO="$(GO)" sh scripts/trace_smoke.sh
