// Command whatif demonstrates the paper's "what if" workflow (Section
// III-A): fork a running PGAS multicore with copyPipe, inject a condition
// into the copy (here: corrupt a token in flight), and compare how the two
// universes evolve — without disturbing or re-running the original.
package main

import (
	"fmt"
	"log"

	"livesim"
	"livesim/internal/pgas"
)

func main() {
	const n = 4 // 2x2 mesh
	s := livesim.NewSession(pgas.TopName(n), livesim.Config{CheckpointEvery: 500})
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		log.Fatal(err)
	}
	images, err := pgas.TokenRingImages(n)
	if err != nil {
		log.Fatal(err)
	}
	s.RegisterTestbench("ring", pgas.NewTestbench(n, images))
	if _, err := s.InstPipe("main"); err != nil {
		log.Fatal(err)
	}

	// Run until the token has left node 0 but is still hops away from
	// node 3.
	if err := s.Run("ring", "main", 25); err != nil {
		log.Fatal(err)
	}
	p, _ := s.Pipe("main")
	fmt.Printf("main pipe at cycle %d\n", p.Sim.Cycle())

	// Fork the universe (Table I copyPipe: "copy a pipeline, including
	// its state").
	if _, err := s.CopyPipe("whatif", "main"); err != nil {
		log.Fatal(err)
	}
	w, _ := s.Pipe("whatif")

	// What if a corrupted token (40) appeared in node 3's mailbox before
	// the real one arrives?
	if err := w.Sim.PokeMem(pgas.MemPath(n, 3), pgas.Mailbox/8, 40); err != nil {
		log.Fatal(err)
	}
	fmt.Println("whatif pipe: injected corrupted token 40 into node 3's mailbox")

	// Run both to completion and compare.
	finish := func(name string) {
		pp, _ := s.Pipe(name)
		for i := 0; i < 200; i++ {
			if err := s.Run("ring", name, 64); err != nil {
				log.Fatal(err)
			}
			pp.Sim.Settle()
			if v, _ := pp.Sim.Out("halted_all"); v == 1 {
				return
			}
		}
		log.Fatalf("%s did not finish", name)
	}
	finish("main")
	finish("whatif")

	fmt.Println("\nfinal token values (a0) per node:")
	fmt.Printf("%-8s", "node")
	for i := 0; i < n; i++ {
		fmt.Printf("  n%d", i)
	}
	fmt.Println()
	for _, name := range []string{"main", "whatif"} {
		pp, _ := s.Pipe(name)
		fmt.Printf("%-8s", name)
		for i := 0; i < n; i++ {
			v, err := pgas.ReadReg(pp.Sim, n, i, 10)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %2d", v)
		}
		fmt.Println()
	}
	fmt.Println("\nnode 3 and node 0 saw the corrupted token only in the fork;")
	fmt.Println("the original session was never disturbed.")

	// The Pipeline Table now lists both universes (paper Table III).
	fmt.Println("\npipeline table:")
	for _, row := range s.Pipes() {
		fmt.Printf("  %-8s %-10s %s\n", row.Name, row.Handle, row.Pointer)
	}
}
