// Command counterdebug replays the paper's primary use case (Section
// III-A, "Debugging a single simulation"): a bug is observed deep into a
// run; the developer jumps to a checkpoint just before the failure,
// inspects state, tests a candidate fix via hot reload, and continues —
// without ever restarting the simulation.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"livesim"
)

// A small packet-counter peripheral. The byte counter is supposed to
// wrap at 200, but the comparison is wrong (< instead of !=, off by one
// in the reload), so counts drift after the first wrap.
const design = `
module bytecount (input clk, input valid, input [7:0] len, output reg [15:0] bytes, output reg [7:0] pkts);
  always @(posedge clk) begin
    if (valid) begin
      bytes <= bytes + len;
      if (pkts < 8'd200)
        pkts <= pkts + 1;
      else
        pkts <= 8'd1;        // BUG: wrap should restart at 0
    end
  end
endmodule

module top (input clk, input valid, input [7:0] len, output [15:0] bytes, output [7:0] pkts);
  bytecount u0 (.clk(clk), .valid(valid), .len(len), .pkts(pkts), .bytes(bytes));
endmodule
`

func drive(d *livesim.Driver, cycle uint64) error {
	if err := d.SetIn("valid", 1); err != nil {
		return err
	}
	return d.SetIn("len", 40+cycle%7)
}

func main() {
	s := livesim.NewSession("top", livesim.Config{CheckpointEvery: 100, Lookback: 100, Output: os.Stdout})
	if _, err := s.LoadDesign(livesim.Source{Files: map[string]string{"bc.v": design}}); err != nil {
		log.Fatal(err)
	}
	s.RegisterTestbench("traffic", livesim.NewStatelessTB(drive))
	if _, err := s.InstPipe("dut"); err != nil {
		log.Fatal(err)
	}

	// Long run; the failure is observed far into the simulation.
	if err := s.Run("traffic", "dut", 1000); err != nil {
		log.Fatal(err)
	}
	p, _ := s.Pipe("dut")
	pkts, _ := p.Sim.Out("pkts")
	fmt.Printf("cycle %d: pkts=%d  <-- expected (1000 mod 201): something is off\n", p.Sim.Cycle(), pkts)

	// Debug: the wrap happens at cycle ~201. Jump near it using the
	// checkpoint store and single-step to observe the bad transition.
	cp := p.Checkpoints.Select(205, 5)
	fmt.Printf("\njumping to checkpoint at cycle %d to watch the wrap...\n", cp.Cycle)
	if err := p.Sim.Restore(cp.State); err != nil {
		log.Fatal(err)
	}
	for p.Sim.Cycle() < 203 {
		if err := s.Run("traffic", "dut", 1); err != nil {
			log.Fatal(err)
		}
		v, _ := p.Sim.Out("pkts")
		fmt.Printf("  cycle %d: pkts=%d\n", p.Sim.Cycle(), v)
	}
	fmt.Println("  -> the counter restarts at 1, losing a packet each wrap")

	// Fix it live. ApplyChange recompiles just bytecount, swaps it under
	// the pipe, reloads a checkpoint and re-executes to cycle 203.
	fixed := strings.Replace(design, "pkts <= 8'd1;        // BUG: wrap should restart at 0", "pkts <= 8'd0;", 1)
	rep, err := s.ApplyChange(livesim.Source{Files: map[string]string{"bc.v": fixed}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot reload: swapped %v in %v\n", rep.Swapped, rep.Total)

	// The background verifier flags checkpoints after the first wrap as
	// divergent and recomputes — the estimate-then-refine flow.
	rep.WaitVerification()
	for _, h := range rep.Verifications {
		if h.Err != nil {
			log.Fatal(h.Err)
		}
		fmt.Printf("verification: consistent=%v refined=%v\n", h.Result.Consistent(), h.Refined)
	}

	// Continue the original session to 1000 cycles with the fix in place.
	if err := s.Run("traffic", "dut", 1000-int(p.Sim.Cycle())); err != nil {
		log.Fatal(err)
	}
	pkts, _ = p.Sim.Out("pkts")
	bytes, _ := p.Sim.Out("bytes")
	fmt.Printf("\ncycle %d with fix: pkts=%d bytes=%d (version %s)\n",
		p.Sim.Cycle(), pkts, bytes, s.Version())
}
