// Command regression builds the paper's "regression system" on top of
// LiveSim (Section III-A): a batch of testbenches runs against the design
// from a saved mid-simulation state — "starting from an arbitrary state,
// not necessarily from the initial state" — and reports pass/fail for
// each, re-using one warmed-up checkpoint instead of paying initialization
// per test.
package main

import (
	"fmt"
	"log"

	"livesim"
)

// A tiny memory-mapped peripheral: a command register executes simple
// operations against an internal accumulator.
const design = `
module alu_periph (input clk, input [1:0] cmd, input [15:0] arg, output reg [15:0] acc);
  always @(posedge clk) begin
    case (cmd)
      2'd1: acc <= acc + arg;
      2'd2: acc <= acc - arg;
      2'd3: acc <= (acc << 1) ^ arg;
      default: acc <= acc;
    endcase
  end
endmodule
module top (input clk, input [1:0] cmd, input [15:0] arg, output [15:0] acc);
  alu_periph u0 (.clk(clk), .cmd(cmd), .arg(arg), .acc(acc));
endmodule
`

// regressionCase is one batch entry: a stimulus plus an expectation over
// the state reached from the shared warm checkpoint.
type regressionCase struct {
	name  string
	tb    string
	run   int
	check func(p *livesim.Pipe) (uint64, uint64) // got, want
}

func main() {
	s := livesim.NewSession("top", livesim.Config{CheckpointEvery: 50})
	if _, err := s.LoadDesign(livesim.Source{Files: map[string]string{"p.v": design}}); err != nil {
		log.Fatal(err)
	}

	// The "boot" workload warms the accumulator to a known nontrivial
	// state — the stand-in for the expensive initialization the paper
	// says companies take pains to skip.
	s.RegisterTestbench("boot", livesim.NewStatelessTB(func(d *livesim.Driver, cycle uint64) error {
		if err := d.SetIn("cmd", 1); err != nil {
			return err
		}
		return d.SetIn("arg", 7)
	}))
	s.RegisterTestbench("adds", livesim.NewStatelessTB(func(d *livesim.Driver, cycle uint64) error {
		d.SetIn("cmd", 1)
		return d.SetIn("arg", 100)
	}))
	s.RegisterTestbench("subs", livesim.NewStatelessTB(func(d *livesim.Driver, cycle uint64) error {
		d.SetIn("cmd", 2)
		return d.SetIn("arg", 3)
	}))
	s.RegisterTestbench("mix", livesim.NewStatelessTB(func(d *livesim.Driver, cycle uint64) error {
		d.SetIn("cmd", 3)
		return d.SetIn("arg", uint64(0x00FF))
	}))

	if _, err := s.InstPipe("golden"); err != nil {
		log.Fatal(err)
	}
	if err := s.Run("boot", "golden", 100); err != nil {
		log.Fatal(err)
	}
	golden, _ := s.Pipe("golden")
	base, _ := golden.Sim.Out("acc")
	fmt.Printf("warm state after boot: acc=%d at cycle %d\n\n", base, golden.Sim.Cycle())

	cases := []regressionCase{
		{"add-burst", "adds", 10, func(p *livesim.Pipe) (uint64, uint64) {
			got, _ := p.Sim.Out("acc")
			return got, (base + 10*100) & 0xFFFF
		}},
		{"sub-burst", "subs", 20, func(p *livesim.Pipe) (uint64, uint64) {
			got, _ := p.Sim.Out("acc")
			return got, (base - 20*3) & 0xFFFF
		}},
		{"mix-xor", "mix", 1, func(p *livesim.Pipe) (uint64, uint64) {
			got, _ := p.Sim.Out("acc")
			return got, ((base << 1) ^ 0xFF) & 0xFFFF
		}},
		{"hold", "boot", 0, func(p *livesim.Pipe) (uint64, uint64) {
			got, _ := p.Sim.Out("acc")
			return got, base
		}},
	}

	fmt.Println("regression batch (each test forks the warm state):")
	pass := 0
	for i, c := range cases {
		pipe := fmt.Sprintf("t%d", i)
		if _, err := s.CopyPipe(pipe, "golden"); err != nil {
			log.Fatal(err)
		}
		if c.run > 0 {
			if err := s.Run(c.tb, pipe, c.run); err != nil {
				log.Fatal(err)
			}
		}
		p, _ := s.Pipe(pipe)
		p.Sim.Settle()
		got, want := c.check(p)
		status := "PASS"
		if got != want {
			status = "FAIL"
		} else {
			pass++
		}
		fmt.Printf("  %-10s %-6s got=%-6d want=%-6d (%d cycles from warm state)\n",
			c.name, status, got, want, c.run)
	}
	fmt.Printf("\n%d/%d passed; golden pipe untouched at cycle %d\n",
		pass, len(cases), golden.Sim.Cycle())
}
