// Command quickstart shows the LiveSim ERD loop end to end on a small
// design: load, run with checkpoints, make a buggy edit, hot reload, and
// watch the session verify and refine — all without restarting the
// simulation.
package main

import (
	"fmt"
	"log"
	"strings"

	"livesim"
)

const design = `
// A saturating accumulator with a configurable limit.
module accum (input clk, input en, input [15:0] d, output reg [31:0] total);
  always @(posedge clk) begin
    if (en) begin
      if (total < 32'd1000000)
        total <= total + d;   // accumulate until the cap
    end
  end
endmodule

module top (input clk, input en, input [15:0] d, output [31:0] total);
  accum u0 (.clk(clk), .en(en), .d(d), .total(total));
endmodule
`

func main() {
	s := livesim.NewSession("top", livesim.Config{CheckpointEvery: 1000})

	if _, err := s.LoadDesign(livesim.Source{Files: map[string]string{"top.v": design}}); err != nil {
		log.Fatal(err)
	}

	// The testbench drives en=1 and a varying input — a pure function of
	// the cycle, so it replays identically from any checkpoint.
	s.RegisterTestbench("tb0", livesim.NewStatelessTB(func(d *livesim.Driver, cycle uint64) error {
		if err := d.SetIn("en", 1); err != nil {
			return err
		}
		return d.SetIn("d", 3+cycle%5)
	}))

	if _, err := s.InstPipe("p0"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== run 10,000 cycles ==")
	if err := s.Run("tb0", "p0", 10_000); err != nil {
		log.Fatal(err)
	}
	p, _ := s.Pipe("p0")
	total, _ := p.Sim.Out("total")
	fmt.Printf("cycle %d: total = %d (checkpoints: %d)\n",
		p.Sim.Cycle(), total, p.Checkpoints.Len())

	// The Object Library Table (paper Table II).
	fmt.Println("\n== object library ==")
	for _, e := range s.Library() {
		fmt.Printf("  %-8s %-10s %-28s %s\n", e.Handle, e.Type, e.CodePath, e.ObjectPath)
	}

	// Edit: double the increment. Only module accum recompiles; the new
	// object is hot-swapped under the running pipe, a checkpoint close to
	// the current cycle reloads, and the gap re-executes.
	fmt.Println("\n== hot reload: total <= total + d  ->  total <= total + d*2 ==")
	edited := strings.Replace(design, "total <= total + d;", "total <= total + (d * 2);", 1)
	rep, err := s.ApplyChange(livesim.Source{Files: map[string]string{"top.v": edited}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swapped objects: %v\n", rep.Swapped)
	fmt.Printf("parse+compile %v  swap %v  checkpoint reload %v  re-execute %v  (total %v)\n",
		rep.CompileStats.ParseTime+rep.CompileStats.CompileTime,
		rep.SwapTime, rep.ReloadTime, rep.ReExecTime, rep.Total)

	total, _ = p.Sim.Out("total")
	fmt.Printf("fast estimate at cycle %d: total = %d\n", p.Sim.Cycle(), total)

	// The change alters history from cycle 0, so the background verifier
	// finds the divergence and refines the state.
	rep.WaitVerification()
	for _, h := range rep.Verifications {
		if h.Err != nil {
			log.Fatal(h.Err)
		}
		fmt.Printf("background verification: consistent=%v refined=%v\n",
			h.Result.Consistent(), h.Refined)
	}
	p.Sim.Settle()
	total, _ = p.Sim.Out("total")
	fmt.Printf("verified state at cycle %d: total = %d\n", p.Sim.Cycle(), total)

	// Keep developing: the session continues from the refined state.
	if err := s.Run("tb0", "p0", 5_000); err != nil {
		log.Fatal(err)
	}
	total, _ = p.Sim.Out("total")
	fmt.Printf("\nafter 5,000 more cycles: total = %d (cycle %d, version %s)\n",
		total, p.Sim.Cycle(), s.Version())
}
