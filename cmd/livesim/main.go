// Command livesim is an interactive shell speaking the command vocabulary
// of the paper's Table I against a live session: load a design, instantiate
// pipes, run testbenches, take and reload checkpoints, hot-reload code
// edits without restarting the simulation, and profile where the
// simulation's time goes (`profile start` / `profile report` — per-instance
// heat, activity and quiescence from internal/prof).
//
// Usage:
//
//	livesim -dir ./mydesign -top top        # load *.v from a directory
//	livesim -pgas 4                         # built-in 2x2 PGAS demo
//	livesim -connect unix:/run/ls.sock      # drive a remote livesimd
//
// Then type `help` at the prompt. The command dispatch is shared with
// livesimd's wire protocol (internal/command), so local and remote
// vocabularies are the same implementation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"livesim"
	"livesim/internal/command"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

var (
	flagDir     = flag.String("dir", "", "directory of .v source files")
	flagTop     = flag.String("top", "top", "top-level module")
	flagPGAS    = flag.Int("pgas", 0, "load the built-in n-node PGAS demo instead of -dir")
	flagCkpt    = flag.Uint64("ckpt-every", 10_000, "checkpoint interval in cycles")
	flagObjs    = flag.String("objdir", "", "directory for persistent compiled objects (.lso)")
	flagMetrics = flag.Bool("metrics", false, "collect session metrics; print a summary at exit (also enables the stats command)")
	flagTrace   = flag.String("trace-out", "", "write live-loop span events to this JSONL file")
	flagConnect = flag.String("connect", "", "connect to a livesimd at this address (unix:/path or tcp:host:port) instead of hosting a session in-process")
	flagSession = flag.String("session", "s0", "session name used in -connect mode")
	flagEpoch   = flag.Uint64("epoch", 0, "stamp this replication fencing epoch on every -connect request (0 = unstamped); a backend whose session holds an older epoch fences itself")
	flagTraceID = flag.String("trace", "", "stamp this trace id on every -connect request (16 hex chars; empty = server-minted per request) — query the tree with `trace <id>` on a gateway")
)

func main() {
	os.Exit(run())
}

// run keeps every exit on one path, so the deferred -trace-out close and
// the metrics exit summary execute on error paths too (fatal errors used
// to os.Exit past them).
func run() int {
	flag.Parse()

	if *flagConnect != "" {
		return runRemote()
	}

	var reg *livesim.Registry
	if *flagMetrics {
		reg = livesim.NewRegistry()
		defer func() {
			fmt.Println("\n-- session metrics --")
			reg.WriteText(os.Stdout)
		}()
	}
	var traceOut *os.File
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		traceOut = f
	}

	cfg := livesim.Config{
		CheckpointEvery: *flagCkpt, Output: os.Stdout, ObjectDir: *flagObjs,
		Metrics: reg, TraceOut: traceOut,
	}
	env := &command.Env{Metrics: reg, Out: os.Stdout}
	switch {
	case *flagPGAS > 0:
		sess, err := command.BootPGAS(*flagPGAS, cfg)
		if err != nil {
			return fail(err)
		}
		env.Session = sess
		fmt.Printf("loaded built-in PGAS %d-node mesh (testbench tb0 registered)\n", *flagPGAS)
	case *flagDir != "":
		files, err := readDir(*flagDir)
		if err != nil {
			return fail(err)
		}
		sess, err := command.BootSource(*flagTop, files, cfg)
		if err != nil {
			return fail(err)
		}
		env.Session = sess
		dir := *flagDir
		env.ApplySource = func() (livesim.Source, error) {
			f, err := readDir(dir)
			if err != nil {
				return livesim.Source{}, err
			}
			return livesim.Source{Files: f}, nil
		}
		fmt.Printf("loaded %s (top %s); testbench \"clock\" registered\n", *flagDir, *flagTop)
	default:
		fmt.Fprintln(os.Stderr, "need -dir, -pgas or -connect; see -help")
		return 2
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("livesim> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "exit" || line == "quit" {
			break
		}
		switch {
		case line == "help":
			printHelp()
		case line != "":
			if err := command.DispatchLine(env, line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("livesim> ")
	}
	return 0
}

func printHelp() {
	fmt.Print("commands (paper Table I plus inspection):\n")
	fmt.Print(command.HelpText())
	fmt.Print("  help                          this text\n  exit\n")
}

func readDir(dir string) (map[string]string, error) {
	files := map[string]string{}
	entries, err := filepath.Glob(filepath.Join(dir, "*.v"))
	if err != nil {
		return nil, err
	}
	sort.Strings(entries)
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		files[filepath.Base(path)] = string(data)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .v files in %s", dir)
	}
	return files, nil
}

// ---------------------------------------------------------- remote mode

// runRemote drives a livesimd over the wire: lines from stdin become
// protocol requests against -session, plus client-side conveniences
// (`create pgas N` / `create dir PATH [TOP]` ship the design, `apply
// DIR` ships an edited snapshot, `subscribe` streams span events).
func runRemote() int {
	// Auto-reconnect: survive a daemon restart or network blip without
	// losing the interactive session. Mutating requests caught by the
	// drop fail with an error the loop prints; reads are resent.
	// FollowMoves: when a fleet migrates the session to another backend
	// (code "moved" + a new address), retarget there transparently
	// instead of retrying a drained daemon forever.
	c, err := client.DialOptions(*flagConnect, client.Options{
		Reconnect:   true,
		FollowMoves: true,
		OnReconnect: func(attempts int) {
			fmt.Printf("\n(reconnected to %s after %d attempt(s))\nlivesim> ", *flagConnect, attempts)
		},
	})
	if err != nil {
		return fail(err)
	}
	defer c.Close()
	go func() {
		for ev := range c.Events() {
			fmt.Printf("event: %s\n", ev)
		}
	}()
	fmt.Printf("connected to %s (session %s)\n", *flagConnect, *flagSession)

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("livesim> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "exit" || line == "quit" {
			break
		}
		if line != "" {
			if err := remoteExec(c, line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("livesim> ")
	}
	return 0
}

func remoteExec(c *client.Client, line string) error {
	args := strings.Fields(line)
	verb := strings.ToLower(args[0])
	rest := args[1:]
	if verb == "top" {
		return remoteTop(c, rest)
	}
	req := &server.Request{Session: *flagSession, Verb: verb, Args: rest, Epoch: *flagEpoch,
		TraceID: *flagTraceID}

	switch verb {
	case "create":
		// create pgas <n> | create dir <path> [top]
		switch {
		case len(rest) == 2 && rest[0] == "pgas":
			n, err := strconv.Atoi(rest[1])
			if err != nil {
				return err
			}
			req.Args, req.PGAS = nil, n
		case (len(rest) == 2 || len(rest) == 3) && rest[0] == "dir":
			files, err := readDir(rest[1])
			if err != nil {
				return err
			}
			req.Args, req.Files = nil, files
			if len(rest) == 3 {
				req.Top = rest[2]
			}
		default:
			return fmt.Errorf("usage: create pgas <n> | create dir <path> [top]")
		}
		req.CheckpointEvery = *flagCkpt
	case "apply":
		// apply <dir>: read the edited sources client-side and ship them.
		if len(rest) != 1 {
			return fmt.Errorf("usage: apply <dir> (remote mode ships the edited sources)")
		}
		files, err := readDir(rest[0])
		if err != nil {
			return err
		}
		req.Args, req.Files = nil, files
	}

	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	if resp.Output != "" {
		fmt.Print(resp.Output)
	}
	if len(resp.Data) > 0 {
		fmt.Printf("  data: %s\n", resp.Data)
	}
	if !resp.OK {
		return fmt.Errorf("%s (%s)", resp.Error, resp.Code)
	}
	return nil
}

// remoteTop renders the server's live per-session table: `top` prints
// it once, `top N` refreshes N times a second apart — enough to watch
// req/s and p99 move under load without a full TUI.
func remoteTop(c *client.Client, rest []string) error {
	refreshes := 1
	if len(rest) == 1 {
		n, err := strconv.Atoi(rest[0])
		if err != nil || n < 1 {
			return fmt.Errorf("usage: top [refreshes]")
		}
		refreshes = n
	} else if len(rest) > 1 {
		return fmt.Errorf("usage: top [refreshes]")
	}
	for i := 0; i < refreshes; i++ {
		resp, err := c.Do(&server.Request{Verb: "top"})
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("%s (%s)", resp.Error, resp.Code)
		}
		fmt.Print(resp.Output)
		if i < refreshes-1 {
			time.Sleep(time.Second)
		}
	}
	return nil
}

// fail reports a fatal error and returns the exit code, leaving actual
// process exit (and deferred cleanup) to run()'s single path.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "livesim:", err)
	return 1
}
