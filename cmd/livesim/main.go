// Command livesim is an interactive shell speaking the command vocabulary
// of the paper's Table I against a live session: load a design, instantiate
// pipes, run testbenches, take and reload checkpoints, and hot-reload code
// edits without restarting the simulation.
//
// Usage:
//
//	livesim -dir ./mydesign -top top        # load *.v from a directory
//	livesim -pgas 4                         # built-in 2x2 PGAS demo
//
// Then type `help` at the prompt.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"livesim"
	"livesim/internal/pgas"
)

var (
	flagDir     = flag.String("dir", "", "directory of .v source files")
	flagTop     = flag.String("top", "top", "top-level module")
	flagPGAS    = flag.Int("pgas", 0, "load the built-in n-node PGAS demo instead of -dir")
	flagCkpt    = flag.Uint64("ckpt-every", 10_000, "checkpoint interval in cycles")
	flagObjs    = flag.String("objdir", "", "directory for persistent compiled objects (.lso)")
	flagMetrics = flag.Bool("metrics", false, "collect session metrics; print a summary at exit (also enables the stats command)")
	flagTrace   = flag.String("trace-out", "", "write live-loop span events to this JSONL file")
)

type shell struct {
	session *livesim.Session
	metrics *livesim.Registry
	dir     string
	pgasN   int
}

func main() {
	flag.Parse()
	sh := &shell{}
	var reg *livesim.Registry
	if *flagMetrics {
		reg = livesim.NewRegistry()
	}
	sh.metrics = reg
	var traceOut *os.File
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			fail(err)
		}
		traceOut = f
		defer f.Close()
	}
	switch {
	case *flagPGAS > 0:
		sh.pgasN = *flagPGAS
		sh.session = livesim.NewSession(pgas.TopName(*flagPGAS), livesim.Config{
			CheckpointEvery: *flagCkpt, Output: os.Stdout,
			Metrics: reg, TraceOut: traceOut,
		})
		if _, err := sh.session.LoadDesign(pgas.Source(*flagPGAS)); err != nil {
			fail(err)
		}
		images, err := pgas.ComputeImages(*flagPGAS, 1<<30)
		if err != nil {
			fail(err)
		}
		sh.session.RegisterTestbench("tb0", pgas.NewTestbench(*flagPGAS, images))
		fmt.Printf("loaded built-in PGAS %d-node mesh (testbench tb0 registered)\n", *flagPGAS)
	case *flagDir != "":
		sh.dir = *flagDir
		sh.session = livesim.NewSession(*flagTop, livesim.Config{
			CheckpointEvery: *flagCkpt, Output: os.Stdout, ObjectDir: *flagObjs,
			Metrics: reg, TraceOut: traceOut,
		})
		src, err := readDir(*flagDir)
		if err != nil {
			fail(err)
		}
		if _, err := sh.session.LoadDesign(src); err != nil {
			fail(err)
		}
		// A do-nothing clock testbench is always available.
		sh.session.RegisterTestbench("clock", livesim.NewStatelessTB(nil))
		fmt.Printf("loaded %s (top %s); testbench \"clock\" registered\n", *flagDir, *flagTop)
	default:
		fmt.Fprintln(os.Stderr, "need -dir or -pgas; see -help")
		os.Exit(2)
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("livesim> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "exit" || line == "quit" {
			break
		}
		if line != "" {
			if err := sh.exec(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("livesim> ")
	}
	if reg != nil {
		fmt.Println("\n-- session metrics --")
		if err := reg.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func readDir(dir string) (livesim.Source, error) {
	files := map[string]string{}
	entries, err := filepath.Glob(filepath.Join(dir, "*.v"))
	if err != nil {
		return livesim.Source{}, err
	}
	sort.Strings(entries)
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			return livesim.Source{}, err
		}
		files[filepath.Base(path)] = string(data)
	}
	if len(files) == 0 {
		return livesim.Source{}, fmt.Errorf("no .v files in %s", dir)
	}
	return livesim.Source{Files: files}, nil
}

func (sh *shell) exec(line string) error {
	args := strings.Fields(line)
	cmd := strings.ToLower(args[0])
	rest := args[1:]
	switch cmd {
	case "help":
		fmt.Print(`commands (paper Table I plus inspection):
  ldlib                         list the Object Library Table
  instpipe <name>               instantiate a pipeline
  copypipe <new> <old>          copy a pipeline including state
  pipes                         list the Pipeline Table
  stages <pipe>                 list the Stage Table
  run <tb> <pipe> <cycles>      run a testbench
  chkp <pipe> <path>            save a checkpoint file
  ldch <pipe> <path>            load a checkpoint file
  apply                         re-read sources and hot reload (ERD loop)
  history                       show the register transform history
  peek <pipe> <hier.signal>     read a signal
  poke <pipe> <hier.signal> <v> write a signal
  trace <tb> <pipe> <cycles> <file.vcd> [scope]
                                run while dumping a VCD waveform
  checkpoints <pipe>            list the pipe's checkpoints
  cycle <pipe>                  show the pipe's cycle
  health                        show the session's robustness summary
                                (rollbacks, verify errors, recovered panics)
  stats [json]                  dump the metrics registry (needs -metrics);
                                shows compile cache effectiveness, VM ops,
                                checkpoint and verification counters
  exit
`)
		return nil

	case "stats", ":stats":
		if sh.metrics == nil {
			return fmt.Errorf("metrics are disabled; restart with -metrics")
		}
		if len(rest) == 1 && rest[0] == "json" {
			fmt.Printf("%s\n", sh.metrics.Snapshot().JSON())
			return nil
		}
		return sh.metrics.WriteText(os.Stdout)

	case "ldlib":
		for _, e := range sh.session.Library() {
			fmt.Printf("  %-10s %-10s %-30s %s\n", e.Handle, e.Type, e.CodePath, e.ObjectPath)
		}
		return nil

	case "instpipe":
		if len(rest) != 1 {
			return fmt.Errorf("usage: instpipe <name>")
		}
		_, err := sh.session.InstPipe(rest[0])
		return err

	case "copypipe":
		if len(rest) != 2 {
			return fmt.Errorf("usage: copypipe <new> <old>")
		}
		_, err := sh.session.CopyPipe(rest[0], rest[1])
		return err

	case "pipes":
		for _, r := range sh.session.Pipes() {
			fmt.Printf("  %-10s %-12s %s\n", r.Name, r.Handle, r.Pointer)
		}
		return nil

	case "stages":
		if len(rest) != 1 {
			return fmt.Errorf("usage: stages <pipe>")
		}
		rows, err := sh.session.Stages(rest[0])
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("  %-28s %-14s %s\n", r.StageName, r.Handle, r.Pointer)
		}
		return nil

	case "run":
		if len(rest) != 3 {
			return fmt.Errorf("usage: run <tb> <pipe> <cycles>")
		}
		cycles, err := strconv.Atoi(rest[2])
		if err != nil {
			return err
		}
		if err := sh.session.Run(rest[0], rest[1], cycles); err != nil {
			return err
		}
		p, _ := sh.session.Pipe(rest[1])
		fmt.Printf("  pipe %s at cycle %d\n", rest[1], p.Sim.Cycle())
		return nil

	case "chkp":
		if len(rest) != 2 {
			return fmt.Errorf("usage: chkp <pipe> <path>")
		}
		return sh.session.SaveCheckpoint(rest[0], rest[1])

	case "ldch":
		if len(rest) != 2 {
			return fmt.Errorf("usage: ldch <pipe> <path>")
		}
		return sh.session.LoadCheckpoint(rest[0], rest[1])

	case "apply":
		var src livesim.Source
		var err error
		if sh.pgasN > 0 {
			return fmt.Errorf("apply requires -dir mode (edit the .v files, then apply)")
		}
		src, err = readDir(sh.dir)
		if err != nil {
			return err
		}
		rep, err := sh.session.ApplyChange(src)
		if err != nil {
			if rep != nil && rep.RolledBack {
				fmt.Printf("  change failed on pipe %s and was rolled back; still on version %s\n",
					rep.FailedPipe, sh.session.Version())
			}
			return err
		}
		if rep.NoChange {
			fmt.Println("  no behavioural change")
			return nil
		}
		fmt.Printf("  swapped %v in %v (compile %v, swap %v, reload %v, re-exec %v)\n",
			rep.Swapped, rep.Total,
			rep.CompileStats.CompileTime, rep.SwapTime, rep.ReloadTime, rep.ReExecTime)
		rep.WaitVerification()
		for _, h := range rep.Verifications {
			if h.Err != nil {
				return h.Err
			}
			fmt.Printf("  verification: consistent=%v refined=%v\n", h.Result.Consistent(), h.Refined)
		}
		return nil

	case "history":
		fmt.Print(sh.session.TransformOps().Describe())
		return nil

	case "peek":
		if len(rest) != 2 {
			return fmt.Errorf("usage: peek <pipe> <hier.signal>")
		}
		p, ok := sh.session.Pipe(rest[0])
		if !ok {
			return fmt.Errorf("no pipe %q", rest[0])
		}
		v, err := p.Sim.Peek(rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("  %s = %d (%#x)\n", rest[1], v, v)
		return nil

	case "poke":
		if len(rest) != 3 {
			return fmt.Errorf("usage: poke <pipe> <hier.signal> <value>")
		}
		p, ok := sh.session.Pipe(rest[0])
		if !ok {
			return fmt.Errorf("no pipe %q", rest[0])
		}
		v, err := strconv.ParseUint(rest[2], 0, 64)
		if err != nil {
			return err
		}
		return p.Sim.Poke(rest[1], v)

	case "trace":
		if len(rest) < 4 {
			return fmt.Errorf("usage: trace <tb> <pipe> <cycles> <file.vcd> [scope]")
		}
		cycles, err := strconv.Atoi(rest[2])
		if err != nil {
			return err
		}
		p, ok := sh.session.Pipe(rest[1])
		if !ok {
			return fmt.Errorf("no pipe %q", rest[1])
		}
		f, err := os.Create(rest[3])
		if err != nil {
			return err
		}
		defer f.Close()
		filter := livesim.TraceAll()
		if len(rest) >= 5 {
			filter = livesim.TraceUnder(rest[4])
		}
		tr, err := livesim.NewTracer(f, p, filter)
		if err != nil {
			return err
		}
		defer tr.Close()
		for i := 0; i < cycles; i++ {
			if err := sh.session.Run(rest[0], rest[1], 1); err != nil {
				return err
			}
			if err := tr.Sample(); err != nil {
				return err
			}
		}
		fmt.Printf("  wrote %s (%d signals, %d cycles)\n", rest[3], tr.NumProbes(), cycles)
		return nil

	case "checkpoints":
		if len(rest) != 1 {
			return fmt.Errorf("usage: checkpoints <pipe>")
		}
		p, ok := sh.session.Pipe(rest[0])
		if !ok {
			return fmt.Errorf("no pipe %q", rest[0])
		}
		for _, cp := range p.Checkpoints.All() {
			fmt.Printf("  #%-4d cycle %-10d version %-4s %8d bytes\n",
				cp.ID, cp.Cycle, cp.Version, cp.State.Bytes())
		}
		return nil

	case "health":
		fmt.Println(indent(sh.session.Health().String()))
		return nil

	case "cycle":
		if len(rest) != 1 {
			return fmt.Errorf("usage: cycle <pipe>")
		}
		p, ok := sh.session.Pipe(rest[0])
		if !ok {
			return fmt.Errorf("no pipe %q", rest[0])
		}
		fmt.Printf("  %d (version %s)\n", p.Sim.Cycle(), sh.session.Version())
		return nil
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "livesim:", err)
	os.Exit(1)
}
