// Command livesimd is the LiveSim simulation server: it hosts many
// independent sessions and serves them to concurrent clients over TCP
// and/or unix sockets with a newline-delimited JSON protocol (see
// internal/server). Clients create sessions, run testbenches, hot-reload
// edits, take checkpoints and subscribe to live span traces; the daemon
// provides per-session serialization, backpressure, request deadlines,
// idle eviction and — on SIGTERM/SIGINT — a graceful drain that
// checkpoints every dirty session before exiting.
//
// Usage:
//
//	livesimd -listen :9310                      # TCP
//	livesimd -unix /run/livesim.sock            # unix socket
//	livesimd -unix /tmp/ls.sock -drain-dir /var/lib/livesim
//	livesimd -listen :9310 -admin-addr 127.0.0.1:9311   # + HTTP admin plane
//
// Drive it with `livesim -connect <addr>` or any NDJSON-speaking client.
// The admin plane serves /metrics (Prometheus text), /healthz, /eventsz,
// /profilez (per-session activity-profiler snapshots; enable recording
// with the `profile start` verb) and /debug/pprof; operational logs are
// structured JSONL on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"livesim/internal/faultinject"
	"livesim/internal/obs"
	"livesim/internal/server"
)

var (
	flagListen  = flag.String("listen", "", "TCP address to listen on (e.g. :9310)")
	flagUnix    = flag.String("unix", "", "unix socket path to listen on")
	flagQueue   = flag.Int("queue-depth", 8, "per-session request queue depth (full queues reject with backpressure)")
	flagReqTO   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	flagIdle    = flag.Duration("idle-evict", 0, "evict sessions idle this long (0 = never; dirty sessions are checkpointed)")
	flagDrain   = flag.String("drain-dir", "", "directory for drain/eviction checkpoints and the drain.json manifest")
	flagDrainTO = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests")
	flagCkpt    = flag.Uint64("ckpt-every", 10_000, "default checkpoint interval for created sessions")
	flagMetrics = flag.Bool("metrics", true, "print the server metrics registry on exit")
	flagTrace   = flag.String("trace-out", "", "write server request-span JSONL to this file")

	// Observability plane (see README "Operations").
	flagAdmin    = flag.String("admin-addr", "", "HTTP admin endpoint serving /metrics, /healthz, /eventsz, /tracez, /flightz and /debug/pprof (e.g. 127.0.0.1:9311)")
	flagSlowReq  = flag.Duration("slow-request", time.Second, "log + ring-record requests slower than this, with their trace id (0 = off)")
	flagLogLevel = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	flagEvents   = flag.Int("event-ring", 256, "operational event ring capacity (events verb, /eventsz)")

	// Distributed tracing & flight recorder (see README "Distributed
	// tracing & flight recorder").
	flagProcName   = flag.String("proc-name", "", "process label in assembled fleet traces and blackbox dumps (default livesimd:<pid>)")
	flagTraceStore = flag.Int("trace-store", 0, "in-memory span store capacity in traces, for `spans`/`trace <id>`/tracez (0 = default 256, negative = off)")
	flagTraceSlow  = flag.Duration("trace-slow", 0, "tail-sampling threshold: retain completed traces at least this slow, or errored (0 = default: -slow-request, else 250ms)")
	flagFlight     = flag.Int("flight", 0, "flight-recorder ring capacity in span/event lines, for /flightz and blackbox dumps (0 = default 512, negative = off)")
	flagBlackbox   = flag.String("blackbox-dir", "", "directory for blackbox-<ts>.jsonl dumps on abnormal exits (default: -state-dir)")
	flagBBFlush    = flag.Duration("blackbox-flush", 0, "periodic blackbox flush cadence — the record surviving SIGKILL (0 = default 2s, negative = off)")

	// Durability & robustness (see README "Durability & recovery").
	flagState     = flag.String("state-dir", "", "state directory for per-session change journals + watermark checkpoints; enables crash-restart recovery")
	flagRunBudget = flag.Duration("run-budget", 0, "hung-run watchdog: cancel runs exceeding this wall-clock budget (0 = off)")
	flagQuarAfter = flag.Int("quarantine-after", 0, "quarantine a session after N consecutive failures (0 = default 3, negative = off)")
	flagWALSync   = flag.Duration("wal-fsync-every", 100*time.Millisecond, "journal fsync batching interval; 0 = fsync on every append (durable but slow)")
	flagJournalCk = flag.Int("journal-ckpt-every", 0, "save watermark checkpoints every N journaled mutations (0 = only on drain/evict)")
	flagCrashWAL  = flag.Int64("crash-wal-offset", -1, "TESTING: SIGKILL self once any session journal reaches this byte offset")

	// Resource governance (see README "Overload & degradation").
	flagAdmitBudget = flag.Int64("admit-budget", 0, "global admission budget in verb-cost units; excess requests are rejected with a retry hint (0 = default 256, negative = off)")
	flagDiskPoll    = flag.Duration("disk-poll", 0, "resource-governor probe cadence for the disk-pressure ladder and memory gauges (0 = default 2s)")
	flagMemBudget   = flag.Uint64("mem-budget", 0, "shed idle sessions once summed per-session memory estimates exceed this many bytes (0 = unlimited)")
	flagResume      = flag.Duration("journal-resume-delay", 0, "cooldown before a paused (nondurable) journal may resume and reanchor (0 = default 250ms)")
	flagFaultFull   = flag.String("fault-disk-full", "", "TESTING: inject ENOSPC into WAL appends, format from:count (1-based append index)")
	flagFaultFree   = flag.String("fault-disk-free", "", "TESTING: force the disk probe to report free:total bytes, walking the pressure ladder without filling a filesystem")

	// Replication (see README "Replication & failover"). Sessions are
	// replicated by verb (`replicate <addr>`), usually driven by lsgate;
	// these flags only inject faults into the shipper for crash tests.
	flagFaultRepl     = flag.String("fault-repl", "", "TESTING: fail the next replication stage of this name (seed or ship) with an injected error")
	flagFaultReplDrop = flag.Int("fault-repl-drop", 0, "TESTING: sever the replication stream before the Nth shipped batch (1-based; 0 = off)")
)

// parsePair splits a "from:count"-style flag into two non-negative ints.
func parsePair(flagName, v string) (a, b int64, err error) {
	parts := strings.SplitN(v, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-%s: want A:B, got %q", flagName, v)
	}
	if a, err = strconv.ParseInt(parts[0], 10, 64); err != nil || a < 0 {
		return 0, 0, fmt.Errorf("-%s: bad first field %q", flagName, parts[0])
	}
	if b, err = strconv.ParseInt(parts[1], 10, 64); err != nil || b < 0 {
		return 0, 0, fmt.Errorf("-%s: bad second field %q", flagName, parts[1])
	}
	return a, b, nil
}

func main() {
	os.Exit(run())
}

// run keeps every exit on one path so deferred cleanup (trace file
// close, metrics summary) always executes.
func run() int {
	flag.Parse()
	level, lerr := obs.ParseLevel(*flagLogLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "livesimd:", lerr)
		return 2
	}
	// Structured JSONL operational log: one JSON object per line on
	// stderr, greppable and machine-parseable.
	logger := obs.NewLogger(os.Stderr, level)
	if *flagListen == "" && *flagUnix == "" {
		fmt.Fprintln(os.Stderr, "need -listen and/or -unix; see -help")
		return 2
	}

	reg := obs.NewRegistry()
	cfg := server.Config{
		QueueDepth:      *flagQueue,
		RequestTimeout:  *flagReqTO,
		IdleTimeout:     *flagIdle,
		CheckpointEvery: *flagCkpt,
		DrainDir:        *flagDrain,
		Metrics:         reg,
		Log:             logger,
		SlowRequest:     *flagSlowReq,
		EventRingCap:    *flagEvents,

		ProcName:           *flagProcName,
		SpanStoreCap:       *flagTraceStore,
		TraceSlow:          *flagTraceSlow,
		FlightRecorderCap:  *flagFlight,
		BlackboxDir:        *flagBlackbox,
		BlackboxFlushEvery: *flagBBFlush,

		StateDir:               *flagState,
		RunBudget:              *flagRunBudget,
		QuarantineAfter:        *flagQuarAfter,
		JournalCheckpointEvery: *flagJournalCk,

		AdmitBudget:        *flagAdmitBudget,
		DiskPollEvery:      *flagDiskPoll,
		MemBudget:          *flagMemBudget,
		JournalResumeDelay: *flagResume,
	}
	if *flagWALSync <= 0 {
		cfg.WALSyncEvery = -1 // fsync on every append
	} else {
		cfg.WALSyncEvery = *flagWALSync
	}
	if *flagCrashWAL >= 0 || *flagFaultFull != "" || *flagFaultFree != "" ||
		*flagFaultRepl != "" || *flagFaultReplDrop > 0 {
		plan := faultinject.New()
		cfg.Faults = plan
		if *flagCrashWAL >= 0 {
			// Crash-matrix harness: die hard (no drain, no deferred cleanup)
			// the moment any session journal's durable size crosses the
			// offset, so recovery tests exercise a genuinely torn process.
			plan.CrashWALAt(*flagCrashWAL)
			cfg.WALOnWrite = func(size int64) {
				if plan.WALSize(size) {
					syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
			}
		}
		if *flagFaultFull != "" {
			from, count, err := parsePair("fault-disk-full", *flagFaultFull)
			if err != nil {
				fmt.Fprintln(os.Stderr, "livesimd:", err)
				return 2
			}
			plan.DiskFullAppends(int(from), int(count))
		}
		if *flagFaultFree != "" {
			free, total, err := parsePair("fault-disk-free", *flagFaultFree)
			if err != nil {
				fmt.Fprintln(os.Stderr, "livesimd:", err)
				return 2
			}
			plan.ForceDiskFree(uint64(free), uint64(total))
		}
		if *flagFaultRepl != "" {
			plan.FailReplAt(*flagFaultRepl)
		}
		if *flagFaultReplDrop > 0 {
			plan.DropReplStream(*flagFaultReplDrop)
		}
	}
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			logger.Error("trace-out open failed", obs.Str("err", err.Error()))
			return 1
		}
		defer f.Close()
		cfg.TraceOut = f
	}
	if *flagMetrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "-- server metrics --")
			reg.WriteText(os.Stderr)
		}()
	}

	srv := server.New(cfg)

	// The admin plane binds before Recover so /healthz reports
	// "recovering" (503) during journal replay instead of refusing
	// connections — a load balancer can tell "booting" from "dead".
	if *flagAdmin != "" {
		aln, err := net.Listen("tcp", *flagAdmin)
		if err != nil {
			logger.Error("admin listen failed", obs.Str("addr", *flagAdmin), obs.Str("err", err.Error()))
			return 1
		}
		admin := &http.Server{Handler: srv.AdminHandler()}
		go admin.Serve(aln)
		defer admin.Close()
		logger.Info("admin endpoint listening", obs.Str("addr", aln.Addr().String()))
	}

	if err := srv.Recover(); err != nil {
		logger.Error("recover failed", obs.Str("err", err.Error()))
		return 1
	}
	serveErrs := make(chan error, 2)
	listening := 0
	if *flagListen != "" {
		ln, err := net.Listen("tcp", *flagListen)
		if err != nil {
			logger.Error("tcp listen failed", obs.Str("addr", *flagListen), obs.Str("err", err.Error()))
			return 1
		}
		logger.Info("listening", obs.Str("net", "tcp"), obs.Str("addr", ln.Addr().String()))
		listening++
		go func() { serveErrs <- srv.Serve(ln) }()
	}
	if *flagUnix != "" {
		os.Remove(*flagUnix) // stale socket from an unclean previous run
		ln, err := net.Listen("unix", *flagUnix)
		if err != nil {
			logger.Error("unix listen failed", obs.Str("addr", *flagUnix), obs.Str("err", err.Error()))
			return 1
		}
		defer os.Remove(*flagUnix)
		logger.Info("listening", obs.Str("net", "unix"), obs.Str("addr", *flagUnix))
		listening++
		go func() { serveErrs <- srv.Serve(ln) }()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigs:
		logger.Info("signal received; draining", obs.Str("signal", sig.String()))
	case <-srv.DrainRequested():
		// The wire `drain` verb (operator, or a gateway that migrated
		// everything off) runs the exact same path SIGTERM does.
		logger.Info("drain requested over the wire; draining")
	case err := <-serveErrs:
		if err != nil {
			logger.Error("serve failed", obs.Str("err", err.Error()))
			return 1
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), *flagDrainTO)
	defer cancel()
	rep, err := srv.Shutdown(ctx)
	if err != nil {
		logger.Error("drain failed", obs.Str("err", err.Error()))
		return 1
	}
	saved := 0
	for _, ds := range rep.Sessions {
		saved += len(ds.Files)
	}
	logger.Info(fmt.Sprintf("drained cleanly (%d sessions, %d checkpoint files)", len(rep.Sessions), saved))
	return 0
}
