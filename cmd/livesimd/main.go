// Command livesimd is the LiveSim simulation server: it hosts many
// independent sessions and serves them to concurrent clients over TCP
// and/or unix sockets with a newline-delimited JSON protocol (see
// internal/server). Clients create sessions, run testbenches, hot-reload
// edits, take checkpoints and subscribe to live span traces; the daemon
// provides per-session serialization, backpressure, request deadlines,
// idle eviction and — on SIGTERM/SIGINT — a graceful drain that
// checkpoints every dirty session before exiting.
//
// Usage:
//
//	livesimd -listen :9310                      # TCP
//	livesimd -unix /run/livesim.sock            # unix socket
//	livesimd -unix /tmp/ls.sock -drain-dir /var/lib/livesim
//
// Drive it with `livesim -connect <addr>` or any NDJSON-speaking client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"livesim/internal/faultinject"
	"livesim/internal/obs"
	"livesim/internal/server"
)

var (
	flagListen  = flag.String("listen", "", "TCP address to listen on (e.g. :9310)")
	flagUnix    = flag.String("unix", "", "unix socket path to listen on")
	flagQueue   = flag.Int("queue-depth", 8, "per-session request queue depth (full queues reject with backpressure)")
	flagReqTO   = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
	flagIdle    = flag.Duration("idle-evict", 0, "evict sessions idle this long (0 = never; dirty sessions are checkpointed)")
	flagDrain   = flag.String("drain-dir", "", "directory for drain/eviction checkpoints and the drain.json manifest")
	flagDrainTO = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight requests")
	flagCkpt    = flag.Uint64("ckpt-every", 10_000, "default checkpoint interval for created sessions")
	flagMetrics = flag.Bool("metrics", true, "print the server metrics registry on exit")
	flagTrace   = flag.String("trace-out", "", "write server request-span JSONL to this file")

	// Durability & robustness (see README "Durability & recovery").
	flagState     = flag.String("state-dir", "", "state directory for per-session change journals + watermark checkpoints; enables crash-restart recovery")
	flagRunBudget = flag.Duration("run-budget", 0, "hung-run watchdog: cancel runs exceeding this wall-clock budget (0 = off)")
	flagQuarAfter = flag.Int("quarantine-after", 0, "quarantine a session after N consecutive failures (0 = default 3, negative = off)")
	flagWALSync   = flag.Duration("wal-fsync-every", 100*time.Millisecond, "journal fsync batching interval; 0 = fsync on every append (durable but slow)")
	flagJournalCk = flag.Int("journal-ckpt-every", 0, "save watermark checkpoints every N journaled mutations (0 = only on drain/evict)")
	flagCrashWAL  = flag.Int64("crash-wal-offset", -1, "TESTING: SIGKILL self once any session journal reaches this byte offset")
)

func main() {
	os.Exit(run())
}

// run keeps every exit on one path so deferred cleanup (trace file
// close, metrics summary) always executes.
func run() int {
	flag.Parse()
	logger := log.New(os.Stderr, "livesimd: ", log.LstdFlags)
	if *flagListen == "" && *flagUnix == "" {
		fmt.Fprintln(os.Stderr, "need -listen and/or -unix; see -help")
		return 2
	}

	reg := obs.NewRegistry()
	cfg := server.Config{
		QueueDepth:      *flagQueue,
		RequestTimeout:  *flagReqTO,
		IdleTimeout:     *flagIdle,
		CheckpointEvery: *flagCkpt,
		DrainDir:        *flagDrain,
		Metrics:         reg,
		Logf:            logger.Printf,

		StateDir:               *flagState,
		RunBudget:              *flagRunBudget,
		QuarantineAfter:        *flagQuarAfter,
		JournalCheckpointEvery: *flagJournalCk,
	}
	if *flagWALSync <= 0 {
		cfg.WALSyncEvery = -1 // fsync on every append
	} else {
		cfg.WALSyncEvery = *flagWALSync
	}
	if *flagCrashWAL >= 0 {
		// Crash-matrix harness: die hard (no drain, no deferred cleanup)
		// the moment any session journal's durable size crosses the
		// offset, so recovery tests exercise a genuinely torn process.
		plan := faultinject.New()
		plan.CrashWALAt(*flagCrashWAL)
		cfg.Faults = plan
		cfg.WALOnWrite = func(size int64) {
			if plan.WALSize(size) {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	if *flagTrace != "" {
		f, err := os.Create(*flagTrace)
		if err != nil {
			logger.Print(err)
			return 1
		}
		defer f.Close()
		cfg.TraceOut = f
	}
	if *flagMetrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "-- server metrics --")
			reg.WriteText(os.Stderr)
		}()
	}

	srv := server.New(cfg)
	if err := srv.Recover(); err != nil {
		logger.Printf("recover: %v", err)
		return 1
	}
	serveErrs := make(chan error, 2)
	listening := 0
	if *flagListen != "" {
		ln, err := net.Listen("tcp", *flagListen)
		if err != nil {
			logger.Print(err)
			return 1
		}
		logger.Printf("listening on tcp %s", ln.Addr())
		listening++
		go func() { serveErrs <- srv.Serve(ln) }()
	}
	if *flagUnix != "" {
		os.Remove(*flagUnix) // stale socket from an unclean previous run
		ln, err := net.Listen("unix", *flagUnix)
		if err != nil {
			logger.Print(err)
			return 1
		}
		defer os.Remove(*flagUnix)
		logger.Printf("listening on unix %s", *flagUnix)
		listening++
		go func() { serveErrs <- srv.Serve(ln) }()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigs:
		logger.Printf("received %v; draining", sig)
	case err := <-serveErrs:
		if err != nil {
			logger.Printf("serve: %v", err)
			return 1
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), *flagDrainTO)
	defer cancel()
	rep, err := srv.Shutdown(ctx)
	if err != nil {
		logger.Printf("drain: %v", err)
		return 1
	}
	saved := 0
	for _, ds := range rep.Sessions {
		saved += len(ds.Files)
	}
	logger.Printf("drained cleanly (%d sessions checkpointed, %d files)", len(rep.Sessions), saved)
	return 0
}
