package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"livesim/internal/server"
	"livesim/internal/server/client"
)

// overloadBench measures the admission controller under offered load at
// 1x, 2x and 4x the configured capacity: an in-process server with a
// small global budget, raw clients (overload retries disabled) so every
// typed rejection is visible, per-client disjoint PGAS sessions. For
// each point it reports completed req/s, the typed rejection split, and
// p50/p99 request latency — overload must translate into fast typed
// rejections, not latency collapse. After each round it measures the
// recovery blackout: how long until admission drains to zero and a
// probe mutation succeeds again.
func overloadBench() {
	const (
		budget  = 16 // admission units
		runCost = 8  // the run verb's weight (internal/command)
	)
	capacity := budget / runCost // concurrent heavy runs admitted
	fmt.Println("== Overload: admission control at 1x/2x/4x capacity (in-process livesimd) ==")
	fmt.Printf("   admit budget %d units, run costs %d => capacity %d concurrent runs,\n",
		budget, runCost, capacity)
	fmt.Printf("   raw clients (no overload retry), run tb0 p0 64, %v per point\n", *flagBudget)

	dir, err := os.MkdirTemp("", "lsb")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		fatal(err)
	}
	reg := benchRegistry()
	srv := server.New(server.Config{QueueDepth: 4, AdmitBudget: budget, Metrics: reg})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// createRetry absorbs overload rejections during setup — session
	// creation is itself weighed against the budget.
	createRetry := func(c *client.Client, req *server.Request) {
		for {
			resp, err := c.Do(req)
			if err != nil {
				fatal(err)
			}
			if resp.OK {
				return
			}
			if resp.Code != server.CodeOverloaded && resp.Code != server.CodeBackpressure {
				fatal(fmt.Errorf("%s (%s)", resp.Error, resp.Code))
			}
			time.Sleep(time.Duration(resp.RetryAfterMs) * time.Millisecond)
		}
	}

	fmt.Printf("%-8s %-8s %10s %10s %12s %12s %10s %10s %12s\n",
		"load", "clients", "ok", "ok/s", "overloaded", "backpress", "p50", "p99", "blackout")
	for round, mult := range []int{1, 2, 4} {
		workers := capacity * mult * 2 // 2 clients per admitted slot at 1x keeps the budget full
		var (
			mu   sync.Mutex
			lats []time.Duration
			ok   int64
			over int64
			back int64
		)
		var wg sync.WaitGroup
		start := time.Now()
		stop := start.Add(*flagBudget)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := client.DialOptions("unix:"+sock, client.Options{OverloadRetries: -1})
				if err != nil {
					fatal(err)
				}
				defer c.Close()
				name := fmt.Sprintf("ov%d_%d", round, i)
				createRetry(c, &server.Request{Session: name, Verb: "create", PGAS: 1, CheckpointEvery: 100_000})
				createRetry(c, &server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}})
				req := &server.Request{Session: name, Verb: "run", Args: []string{"tb0", "p0", "64"}}
				for time.Now().Before(stop) {
					t0 := time.Now()
					resp, err := c.Do(req)
					if err != nil {
						fatal(err)
					}
					d := time.Since(t0)
					mu.Lock()
					lats = append(lats, d)
					switch {
					case resp.OK:
						ok++
					case resp.Code == server.CodeOverloaded:
						over++
					case resp.Code == server.CodeBackpressure:
						back++
					default:
						mu.Unlock()
						fatal(fmt.Errorf("untyped rejection under overload: %s (%s)", resp.Error, resp.Code))
						return
					}
					mu.Unlock()
				}
				createRetry(c, &server.Request{Session: name, Verb: "close"})
			}(i)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50, p99 := time.Duration(0), time.Duration(0)
		if len(lats) > 0 {
			p50, p99 = lats[len(lats)/2], lats[len(lats)*99/100]
		}

		// Recovery blackout: load is gone — how long until a fresh
		// mutation on a fresh session completes?
		t0 := time.Now()
		probe, err := client.Dial("unix:" + sock)
		if err != nil {
			fatal(err)
		}
		name := fmt.Sprintf("probe%d", round)
		createRetry(probe, &server.Request{Session: name, Verb: "create", PGAS: 1, CheckpointEvery: 100_000})
		createRetry(probe, &server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}})
		createRetry(probe, &server.Request{Session: name, Verb: "run", Args: []string{"tb0", "p0", "4"}})
		createRetry(probe, &server.Request{Session: name, Verb: "close"})
		blackout := time.Since(t0)
		probe.Close()

		fmt.Printf("%-8s %-8d %10d %10.0f %12d %12d %10s %10s %12s\n",
			fmt.Sprintf("%dx", mult), workers, ok, float64(ok)/el, over, back,
			p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond),
			blackout.Round(10*time.Microsecond))
	}
	fmt.Println("   recovered: all rounds ended with a successful probe mutation")
	printSnapshot("overload", reg)
	fmt.Println()
}
