package main

import (
	"fmt"

	"livesim/internal/prof"
)

// activityBench exercises the simulation-core activity profiler
// (internal/prof) as an experiment in its own right:
//
//  1. a quiescence-vs-mesh-size table — for each PGAS mesh, how many of
//     the per-instance clock-edge commits changed nothing. This is the
//     raw material for activity-driven scheduling (ROADMAP item 1): a
//     high quiescent fraction means most seq evals could be skipped.
//  2. a profiler-overhead figure in ABBA order — simulation speed with
//     the profiler never attached, attached-then-detached, and
//     recording. The bar: recording costs < 3%, detached is noise.
func activityBench(sizes []int) {
	fmt.Println("== Activity: per-instance quiescence and profiler overhead ==")

	const profiledCycles = 4096
	fmt.Printf("   (profile of %d cycles per mesh; streaks in cycles)\n", profiledCycles)
	fmt.Printf("%-8s %8s %8s %12s %12s %10s  %s\n",
		"PGAS", "insts", "levels", "seq evals", "quiescent", "eval ms", "quietest instance")
	for _, n := range sizes {
		s, _, err := buildLive(n)
		if err != nil {
			fatal(err)
		}
		if err := loadLive(s, n); err != nil {
			fatal(err)
		}
		s.SetProfiler(prof.New())
		must(s.Tick(profiledCycles))
		snap := s.Profiler().Snapshot()

		quiet := "-"
		var maxStreak uint64
		for i := range snap.Insts {
			if st := &snap.Insts[i]; st.MaxQuietStreak > maxStreak {
				maxStreak = st.MaxQuietStreak
				quiet = fmt.Sprintf("%s (%d)", st.Path, st.MaxQuietStreak)
			}
		}
		fmt.Printf("%-8s %8d %8d %12d %11.1f%% %10.3f  %s\n",
			meshLabel(n), snap.Instances, len(snap.Levels), snap.SeqEvals,
			100*snap.QuiescentFraction, float64(snap.EvalNs)/1e6, quiet)
	}
	fmt.Println()

	// Overhead, ABBA order so machine drift cancels: off, detached, on,
	// then the mirror. "off" never attaches a profiler; "detached"
	// attaches one and removes it again (the state a `profile stop`
	// leaves behind — must be indistinguishable from off); "on" records.
	const n = 4
	arm := func(mode string) float64 {
		s, _, err := buildLive(n)
		if err != nil {
			fatal(err)
		}
		if err := loadLive(s, n); err != nil {
			fatal(err)
		}
		switch mode {
		case "detached":
			s.SetProfiler(prof.New())
			s.SetProfiler(nil)
		case "on":
			s.SetProfiler(prof.New())
		}
		return measureKHz(func(c int) { must(s.Tick(c)) }, s.Cycle)
	}
	modes := []string{"off", "detached", "on"}
	khz := map[string]float64{}
	for _, m := range modes { // A B C
		khz[m] = arm(m)
	}
	for i := len(modes) - 1; i >= 0; i-- { // C B A
		m := modes[i]
		khz[m] = (khz[m] + arm(m)) / 2
	}

	fmt.Printf("profiler overhead (PGAS %s, %v per arm, ABBA averaged):\n", meshLabel(n), *flagBudget)
	fmt.Printf("%-10s %12s %12s\n", "profiler", "KHz", "overhead")
	for _, m := range modes {
		over := "-"
		if m != "off" && khz["off"] > 0 {
			over = fmt.Sprintf("%+.2f%%", (khz["off"]-khz[m])/khz["off"]*100)
		}
		fmt.Printf("%-10s %12.1f %12s\n", m, khz[m], over)
	}
	fmt.Println()
}
