// Command lsbench regenerates the tables and figures of the LiveSim paper
// (ISPASS 2020) on this reproduction. Each experiment prints the same rows
// or series the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	lsbench -all                 # everything at the default sizes
//	lsbench -fig7 -sizes 1,4,16  # one experiment, chosen mesh sizes
//	lsbench -table7 -sizes 1,4,16,64
//
// Mesh sizes are node counts: 1, 4, 16, 64, 256 correspond to the paper's
// 1x1 ... 16x16 PGAS. Large sizes are expensive; the default is 1,4,16.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"livesim/internal/checkpoint"
	"livesim/internal/codegen"
	"livesim/internal/core"
	"livesim/internal/faultinject"
	"livesim/internal/flatsim"
	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/elab"
	"livesim/internal/hdl/parser"
	"livesim/internal/hostmodel"
	"livesim/internal/livecompiler"
	"livesim/internal/obs"
	"livesim/internal/pgas"
	"livesim/internal/sim"
	"livesim/internal/verify"
	"livesim/internal/vm"
	"livesim/internal/wal"
)

var (
	flagSizes   = flag.String("sizes", "1,4,16", "comma-separated mesh node counts (1,4,16,64,256)")
	flagAll     = flag.Bool("all", false, "run every experiment")
	flagFig7    = flag.Bool("fig7", false, "Figure 7: compile+simulate time vs cycles")
	flagFig8    = flag.Bool("fig8", false, "Figure 8: hot reload ERD latency vs mesh size")
	flagTable7  = flag.Bool("table7", false, "Table VII: KHz/IPC/MPKI for both simulators")
	flagTable8  = flag.Bool("table8", false, "Table VIII: compilation times")
	flagCkpt    = flag.Bool("ckpt", false, "Section V-B: checkpointing overhead")
	flagFig6    = flag.Bool("fig6", false, "Figure 6: parallel consistency verification")
	flagAblate  = flag.Bool("ablation", false, "codegen-style ablation (grouped vs mux)")
	flagRollbck = flag.Bool("rollback", false, "robustness: rollback latency after an injected hot-reload failure")
	flagServe   = flag.Bool("serve", false, "server throughput: req/s vs concurrent clients against an in-process livesimd")
	flagFleet   = flag.Bool("fleet", false, "fleet: aggregate req/s through the gateway vs backend count, live-migration blackout, kill-one-backend durability")
	flagFailovr = flag.Bool("failover", false, "replication: ship-on-commit overhead, failover blackout under load, zero-lost-acked audit, stale-primary fencing")
	flagOver    = flag.Bool("overload", false, "overload: typed rejections, latency and recovery blackout at 1x/2x/4x admission capacity")
	flagRecover = flag.Bool("recovery", false, "durability: WAL journaling overhead and crash-recovery replay latency")
	flagObs     = flag.Bool("obs", false, "observability: hot-reload latency with the admin plane off vs on")
	flagAct     = flag.Bool("activity", false, "activity profiler: quiescent-eval fraction per mesh and profiler overhead")
	flagBudget  = flag.Duration("budget", 3*time.Second, "time budget per speed measurement")
	flagProfCyc = flag.Int("profcycles", 300, "profiled cycles for Table VII")
	flagMetrics = flag.Bool("metrics", false, "attach a metrics registry to session-based experiments and embed its JSON snapshot in the output")
)

// benchRegistry returns a registry for one experiment run, or nil when
// -metrics is off (nil disables collection at zero cost).
func benchRegistry() *obs.Registry {
	if !*flagMetrics {
		return nil
	}
	return obs.NewRegistry()
}

// printSnapshot embeds one registry snapshot in the bench output as a
// single labeled JSON line, so runs can be diffed across PRs.
func printSnapshot(label string, reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Printf("metrics[%s]: %s\n", label, reg.Snapshot().JSON())
}

func main() {
	flag.Parse()
	sizes := parseSizes(*flagSizes)
	any := *flagFig7 || *flagFig8 || *flagTable7 || *flagTable8 || *flagCkpt || *flagFig6 || *flagAblate || *flagRollbck || *flagServe || *flagFleet || *flagFailovr || *flagOver || *flagRecover || *flagObs || *flagAct
	if *flagAll || !any {
		*flagFig7, *flagFig8, *flagTable7, *flagTable8 = true, true, true, true
		*flagCkpt, *flagFig6, *flagAblate, *flagRollbck, *flagServe, *flagRecover, *flagObs, *flagAct = true, true, true, true, true, true, true, true
		*flagOver = true
	}
	fmt.Printf("lsbench: sizes=%v budget=%v GOMAXPROCS=%d\n\n", sizes, *flagBudget, runtime.GOMAXPROCS(0))

	if *flagTable8 {
		table8(sizes)
	}
	if *flagFig7 {
		fig7(sizes)
	}
	if *flagTable7 {
		table7(sizes)
	}
	if *flagFig8 {
		fig8(sizes)
	}
	if *flagCkpt {
		ckptOverhead(sizes)
	}
	if *flagFig6 {
		fig6()
	}
	if *flagAblate {
		ablation()
	}
	if *flagRollbck {
		rollbackBench(sizes)
	}
	if *flagServe {
		serveBench()
	}
	if *flagFleet {
		fleetBench()
	}
	if *flagFailovr {
		failoverBench()
	}
	if *flagOver {
		overloadBench()
	}
	if *flagRecover {
		recoveryBench(sizes)
	}
	if *flagObs {
		obsBench()
	}
	if *flagAct {
		activityBench(sizes)
	}
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func meshLabel(n int) string {
	for s := 1; s <= 16; s++ {
		if s*s == n {
			return fmt.Sprintf("%dx%d", s, s)
		}
	}
	return fmt.Sprintf("%dn", n)
}

// ---------------------------------------------------------------- builds

func elaborate(n int) (*elab.Design, error) {
	srcs := map[string]*ast.Module{}
	for name, text := range pgas.DesignSource(n) {
		sf, err := parser.ParseFile(name, text)
		if err != nil {
			return nil, err
		}
		for _, m := range sf.Modules {
			srcs[m.Name] = m
		}
	}
	return elab.Elaborate(srcs, pgas.TopName(n), nil)
}

// buildLive compiles the hierarchical (LiveSim) simulator and reports the
// full-compile wall time.
func buildLive(n int) (*sim.Sim, time.Duration, error) {
	start := time.Now()
	c := livecompiler.New(pgas.TopName(n), codegen.StyleGrouped, nil)
	res, err := c.Build(pgas.Source(n))
	if err != nil {
		return nil, 0, err
	}
	compile := time.Since(start)
	s, err := sim.New(sim.ResolverFunc(c.Resolver()), res.TopKey)
	if err != nil {
		return nil, 0, err
	}
	return s, compile, nil
}

// buildFlat compiles the flattened (Verilator-style) simulator.
func buildFlat(n int) (*flatsim.Sim, time.Duration, error) {
	start := time.Now()
	d, err := elaborate(n)
	if err != nil {
		return nil, 0, err
	}
	obj, err := flatsim.Compile(d, codegen.StyleMux)
	if err != nil {
		return nil, 0, err
	}
	compile := time.Since(start)
	return flatsim.NewSim(obj), compile, nil
}

func loadLive(s *sim.Sim, n int) error {
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := pgas.LoadImage(s, n, i, images[i]); err != nil {
			return err
		}
	}
	return nil
}

func loadFlat(s *flatsim.Sim, n int) error {
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("n%d.u_mem.mem", i)
		for w, v := range images[i] {
			if err := s.PokeMem(path, uint64(w), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureKHz ticks a simulator until the budget elapses.
func measureKHz(tick func(int), cycles func() uint64) float64 {
	start := time.Now()
	chunk := 64
	for time.Since(start) < *flagBudget {
		tick(chunk)
		if chunk < 4096 {
			chunk *= 2
		}
	}
	el := time.Since(start).Seconds()
	return float64(cycles()) / el / 1000.0
}

// ---------------------------------------------------------------- Table VIII

func table8(sizes []int) {
	fmt.Println("== Table VIII: compilation time (seconds) ==")
	fmt.Printf("%-8s %14s %14s %14s\n", "PGAS", "LiveSim reload", "LiveSim full", "Flat (Verilator-like)")
	for _, n := range sizes {
		// Full LiveSim build.
		c := livecompiler.New(pgas.TopName(n), codegen.StyleGrouped, nil)
		t0 := time.Now()
		if _, err := c.Build(pgas.Source(n)); err != nil {
			fatal(err)
		}
		full := time.Since(t0)

		// Hot reload: recompile after a one-stage edit (parse + compile
		// only; swap/reload latency is Figure 8's subject).
		edited, err := pgas.Changes[0].Apply(pgas.Source(n))
		if err != nil {
			fatal(err)
		}
		t1 := time.Now()
		if _, err := c.Build(edited); err != nil {
			fatal(err)
		}
		reload := time.Since(t1)

		// Flat build.
		t2 := time.Now()
		d, err := elaborate(n)
		if err != nil {
			fatal(err)
		}
		if _, err := flatsim.Compile(d, codegen.StyleMux); err != nil {
			fatal(err)
		}
		flat := time.Since(t2)

		fmt.Printf("%-8s %14.3f %14.3f %14.3f\n",
			meshLabel(n), reload.Seconds(), full.Seconds(), flat.Seconds())
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 7

func fig7(sizes []int) {
	fmt.Println("== Figure 7: compile + simulate time to reach N cycles ==")
	fmt.Println("   (series: flat = Verilator-like full build+run; live = LiveSim full")
	fmt.Println("    build+run; checkpoint = LiveSim hot reload + restore near target)")
	points := []uint64{100_000, 1_000_000, 10_000_000}

	for _, n := range sizes {
		ls, liveCompile, err := buildLive(n)
		if err != nil {
			fatal(err)
		}
		if err := loadLive(ls, n); err != nil {
			fatal(err)
		}
		liveKHz := measureKHz(func(c int) { must(ls.Tick(c)) }, ls.Cycle)

		fs, flatCompile, err := buildFlat(n)
		if err != nil {
			fatal(err)
		}
		if err := loadFlat(fs, n); err != nil {
			fatal(err)
		}
		flatKHz := measureKHz(fs.Tick, fs.Cycle)

		// Checkpoint mode: the ERD latency measured in fig8 terms —
		// recompile one stage + swap + restore + re-run lookback cycles.
		erd := erdLatency(n, 2000, 500)

		fmt.Printf("\n-- PGAS %s: compile live=%.2fs flat=%.2fs; speed live=%.1f KHz flat=%.1f KHz --\n",
			meshLabel(n), liveCompile.Seconds(), flatCompile.Seconds(), liveKHz, flatKHz)
		fmt.Printf("%-14s %12s %12s %16s\n", "target cycles", "flat (s)", "live (s)", "checkpoint (s)")
		for _, pt := range points {
			flatT := flatCompile.Seconds() + float64(pt)/(flatKHz*1000)
			liveT := liveCompile.Seconds() + float64(pt)/(liveKHz*1000)
			fmt.Printf("%-14d %12.2f %12.2f %16.3f\n", pt, flatT, liveT, erd.Seconds())
		}
	}
	fmt.Println()
}

// erdLatency measures one full live loop on a warmed-up session.
func erdLatency(n, warm int, every uint64) time.Duration {
	s := core.NewSession(pgas.TopName(n), core.Config{
		Style: codegen.StyleGrouped, CheckpointEvery: every, Lookback: every,
	})
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		fatal(err)
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		fatal(err)
	}
	s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
	if _, err := s.InstPipe("p0"); err != nil {
		fatal(err)
	}
	if err := s.Run("tb0", "p0", warm); err != nil {
		fatal(err)
	}
	edited, err := pgas.Changes[0].Apply(pgas.Source(n))
	if err != nil {
		fatal(err)
	}
	rep, err := s.ApplyChange(edited)
	if err != nil {
		fatal(err)
	}
	rep.WaitVerification()
	return rep.Total
}

// ---------------------------------------------------------------- Table VII

func table7(sizes []int) {
	fmt.Println("== Table VII: host counters ==")
	fmt.Println("   KHz(vm) is the measured bytecode-interpreter speed; KHz(model) is")
	fmt.Println("   what a native build would run at on the modeled host (4 GHz x IPC /")
	fmt.Println("   instructions-per-cycle) — the paper's comparison lives in the model.")
	fmt.Printf("%-8s %-9s %10s %11s %8s %10s %10s %10s %12s\n",
		"PGAS", "simulator", "KHz(vm)", "KHz(model)", "IPC", "I$ MPKI", "D$ MPKI", "BR MPKI", "code bytes")
	const hostGHz = 4.0
	for _, n := range sizes {
		// LiveSim.
		ls, _, err := buildLive(n)
		if err != nil {
			fatal(err)
		}
		if err := loadLive(ls, n); err != nil {
			fatal(err)
		}
		liveKHz := measureKHz(func(c int) { must(ls.Tick(c)) }, ls.Cycle)
		host := hostmodel.NewHost()
		must(ls.TickProfiled(*flagProfCyc, host))
		lm := host.Metrics()
		liveIPC := float64(lm.Instrs) / float64(*flagProfCyc) // instrs per simulated cycle
		liveModel := hostGHz * 1e9 * lm.IPC / liveIPC / 1000
		liveCode := 0
		seen := map[string]bool{}
		for _, nd := range ls.Nodes() {
			if !seen[nd.Obj.Key] {
				seen[nd.Obj.Key] = true
				liveCode += nd.Obj.CodeBytes()
			}
		}
		fmt.Printf("%-8s %-9s %10.1f %11.1f %8.2f %10.2f %10.2f %10.2f %12d\n",
			meshLabel(n), "LiveSim", liveKHz, liveModel, lm.IPC, lm.IMPKI, lm.DMPKI, lm.BRMPKI, liveCode)

		// Flat.
		fs, _, err := buildFlat(n)
		if err != nil {
			fatal(err)
		}
		if err := loadFlat(fs, n); err != nil {
			fatal(err)
		}
		flatKHz := measureKHz(fs.Tick, fs.Cycle)
		host2 := hostmodel.NewHost()
		fs.TickProfiled(*flagProfCyc, host2)
		fm := host2.Metrics()
		flatIPC := float64(fm.Instrs) / float64(*flagProfCyc)
		flatModel := hostGHz * 1e9 * fm.IPC / flatIPC / 1000
		fmt.Printf("%-8s %-9s %10.1f %11.1f %8.2f %10.2f %10.2f %10.2f %12d\n",
			meshLabel(n), "Flat", flatKHz, flatModel, fm.IPC, fm.IMPKI, fm.DMPKI, fm.BRMPKI, fs.Obj.CodeBytes())
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 8

func fig8(sizes []int) {
	fmt.Println("== Figure 8: hot reload + update latency per mesh size ==")
	fmt.Printf("%-8s %-22s %10s %10s %10s %10s %12s %8s\n",
		"PGAS", "change", "parse+comp", "swap", "reload", "re-exec", "total (ms)", "swaps")
	for _, n := range sizes {
		reg := benchRegistry()
		s := core.NewSession(pgas.TopName(n), core.Config{
			Style: codegen.StyleGrouped, CheckpointEvery: 500, Lookback: 500,
			Metrics: reg,
		})
		if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
			fatal(err)
		}
		images, err := pgas.ComputeImages(n, 1<<30)
		if err != nil {
			fatal(err)
		}
		s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
		p, err := s.InstPipe("p0")
		if err != nil {
			fatal(err)
		}
		if err := s.Run("tb0", "p0", 2000); err != nil {
			fatal(err)
		}

		src := pgas.Source(n)
		for _, ch := range pgas.Changes {
			if !ch.Behavioral {
				continue
			}
			edited, err := ch.Apply(src)
			if err != nil {
				fatal(err)
			}
			rep, err := s.ApplyChange(edited)
			if err != nil {
				fatal(err)
			}
			rep.WaitVerification()
			nodes := 0
			for _, st := range mustStages(s, "p0") {
				for _, k := range rep.Swapped {
					if st.Handle == k {
						nodes++
					}
				}
			}
			fmt.Printf("%-8s %-22s %10.1f %10.1f %10.1f %10.1f %12.1f %8d\n",
				meshLabel(n), ch.Name,
				ms(rep.CompileStats.ParseTime+rep.CompileStats.ElabTime+rep.CompileStats.CompileTime),
				ms(rep.SwapTime), ms(rep.ReloadTime), ms(rep.ReExecTime), ms(rep.Total), nodes)
			// Revert for the next change.
			reverted, err := ch.Revert(edited)
			if err != nil {
				fatal(err)
			}
			if rep2, err := s.ApplyChange(reverted); err != nil {
				fatal(err)
			} else {
				rep2.WaitVerification()
			}
		}
		_ = p
		printSnapshot("fig8 "+meshLabel(n), reg)
	}
	fmt.Println()
}

func mustStages(s *core.Session, pipe string) []core.StageRow {
	rows, err := s.Stages(pipe)
	if err != nil {
		fatal(err)
	}
	return rows
}

// ---------------------------------------------------------------- checkpoint overhead

func ckptOverhead(sizes []int) {
	fmt.Println("== Section V-B: checkpointing overhead ==")
	fmt.Printf("%-8s %14s %14s %10s %12s\n", "PGAS", "KHz (off)", "KHz (on)", "overhead", "ckpt bytes")
	for _, n := range sizes {
		run := func(every uint64, reg *obs.Registry) (float64, int) {
			s := core.NewSession(pgas.TopName(n), core.Config{
				Style: codegen.StyleGrouped, CheckpointEvery: every,
				Metrics: reg,
			})
			if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
				fatal(err)
			}
			images, err := pgas.ComputeImages(n, 1<<30)
			if err != nil {
				fatal(err)
			}
			s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
			p, err := s.InstPipe("p0")
			if err != nil {
				fatal(err)
			}
			// Warm up caches and the runtime before timing.
			if err := s.Run("tb0", "p0", 1024); err != nil {
				fatal(err)
			}
			start := time.Now()
			cycles := 0
			for time.Since(start) < *flagBudget {
				if err := s.Run("tb0", "p0", 256); err != nil {
					fatal(err)
				}
				cycles += 256
			}
			khz := float64(cycles) / time.Since(start).Seconds() / 1000
			bytes := 0
			if cps := p.Checkpoints.All(); len(cps) > 0 {
				bytes = cps[len(cps)-1].State.Bytes()
			}
			return khz, bytes
		}
		off, _ := run(0, nil)
		reg := benchRegistry()
		on, bytes := run(1000, reg)
		fmt.Printf("%-8s %14.1f %14.1f %9.1f%% %12d\n",
			meshLabel(n), off, on, 100*(off-on)/off, bytes)
		printSnapshot("ckpt "+meshLabel(n), reg)
	}
	fmt.Println()
}

// ---------------------------------------------------------------- Figure 6

func fig6() {
	fmt.Println("== Figure 6: parallel checkpoint consistency verification ==")
	// Build a synthetic but real workload: single-node mesh with 32
	// checkpoints, verified after a semantics-preserving recompile.
	const n, every, total = 1, 250, 8000
	s := core.NewSession(pgas.TopName(n), core.Config{
		Style: codegen.StyleGrouped, CheckpointEvery: every, Lookback: every,
	})
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		fatal(err)
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		fatal(err)
	}
	s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
	p, err := s.InstPipe("p0")
	if err != nil {
		fatal(err)
	}
	if err := s.Run("tb0", "p0", total); err != nil {
		fatal(err)
	}
	cps := p.Checkpoints.Before(p.Sim.Cycle())
	// Skip the cycle-0 checkpoint: it predates program load, and this
	// harness replays raw ticks (the session's own verifier replays the
	// journaled testbench instead).
	if len(cps) > 0 && cps[0].Cycle == 0 {
		cps = cps[1:]
	}
	fmt.Printf("checkpoints to verify: %d (every %d cycles over %d)\n", len(cps), every, total)

	// Replay function: re-simulate segments on private simulations.
	objs, top, err := pgas.Build(n, codegen.StyleGrouped)
	if err != nil {
		fatal(err)
	}
	replay := func(from *checkpoint.Checkpoint, to uint64) (*sim.State, error) {
		ps, err := sim.New(sim.ResolverFunc(func(k string) (*vm.Object, error) {
			if o, ok := objs[k]; ok {
				return o, nil
			}
			return nil, fmt.Errorf("no object %q", k)
		}), top)
		if err != nil {
			return nil, err
		}
		if err := ps.Restore(from.State); err != nil {
			return nil, err
		}
		if err := ps.Tick(int(to - from.Cycle)); err != nil {
			return nil, err
		}
		if err := ps.Settle(); err != nil {
			return nil, err
		}
		return ps.Snapshot(), nil
	}

	fmt.Printf("%-10s %12s %10s\n", "workers", "elapsed", "speedup")
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		res, err := verify.Run(cps, replay, verify.Options{Workers: w})
		if err != nil {
			fatal(err)
		}
		if !res.Consistent() {
			fmt.Printf("  unexpected divergence at segment %d: %s\n",
				res.FirstDivergence, res.Segments[res.FirstDivergence].Detail)
		}
		if w == 1 {
			base = res.Elapsed
		}
		fmt.Printf("%-10d %12v %9.2fx\n", w, res.Elapsed.Round(time.Millisecond),
			base.Seconds()/res.Elapsed.Seconds())
	}
	fmt.Println()
}

// ---------------------------------------------------------------- ablation

func ablation() {
	fmt.Println("== Ablation: grouped (if/else) vs mux codegen on PGAS 2x2 ==")
	const n = 4
	fmt.Printf("%-10s %10s %8s %10s %10s %10s %12s\n",
		"style", "KHz", "IPC", "I$ MPKI", "D$ MPKI", "BR MPKI", "code bytes")
	for _, style := range []codegen.Style{codegen.StyleGrouped, codegen.StyleMux} {
		c := livecompiler.New(pgas.TopName(n), style, nil)
		res, err := c.Build(pgas.Source(n))
		if err != nil {
			fatal(err)
		}
		s, err := sim.New(sim.ResolverFunc(c.Resolver()), res.TopKey)
		if err != nil {
			fatal(err)
		}
		if err := loadLive(s, n); err != nil {
			fatal(err)
		}
		khz := measureKHz(func(cc int) { must(s.Tick(cc)) }, s.Cycle)
		host := hostmodel.NewHost()
		must(s.TickProfiled(*flagProfCyc, host))
		m := host.Metrics()
		code := 0
		seen := map[string]bool{}
		for _, nd := range s.Nodes() {
			if !seen[nd.Obj.Key] {
				seen[nd.Obj.Key] = true
				code += nd.Obj.CodeBytes()
			}
		}
		fmt.Printf("%-10s %10.1f %8.2f %10.2f %10.2f %10.2f %12d\n",
			style, khz, m.IPC, m.IMPKI, m.DMPKI, m.BRMPKI, code)
	}
	fmt.Println()
}

// ---------------------------------------------------------------- rollback

// rollbackBench measures the cost of the transactional live loop's failure
// path: a hot reload is made to fail mid-commit by a deterministic fault
// plan, and the session rolls every pipe back to the pre-change state. The
// rollback column is the wall time of the failed ApplyChange (prepare +
// partial commit + full restore); the apply column is the same change
// succeeding, for scale.
func rollbackBench(sizes []int) {
	fmt.Println("== Robustness: rollback latency after an injected hot-reload failure ==")
	fmt.Printf("%-8s %-22s %12s %14s %10s\n",
		"PGAS", "change", "apply (ms)", "rollback (ms)", "retry")
	for _, n := range sizes {
		fp := faultinject.New()
		s := core.NewSession(pgas.TopName(n), core.Config{
			Style: codegen.StyleGrouped, CheckpointEvery: 500, Lookback: 500,
			Faults: fp,
		})
		if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
			fatal(err)
		}
		images, err := pgas.ComputeImages(n, 1<<30)
		if err != nil {
			fatal(err)
		}
		s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
		if _, err := s.InstPipe("p0"); err != nil {
			fatal(err)
		}
		if err := s.Run("tb0", "p0", 2000); err != nil {
			fatal(err)
		}

		ch := pgas.Changes[0]
		for _, c := range pgas.Changes {
			if c.Behavioral {
				ch = c
				break
			}
		}
		edited, err := ch.Apply(pgas.Source(n))
		if err != nil {
			fatal(err)
		}

		// Clean apply first: learn which object gets hot-swapped and what a
		// successful trip costs, then revert to the baseline.
		rep, err := s.ApplyChange(edited)
		if err != nil {
			fatal(err)
		}
		rep.WaitVerification()
		if len(rep.Swapped) == 0 {
			fmt.Printf("%-8s %-22s %12s\n", meshLabel(n), ch.Name, "(no swap)")
			continue
		}
		key := rep.Swapped[0]
		reverted, err := ch.Revert(edited)
		if err != nil {
			fatal(err)
		}
		if rep2, err := s.ApplyChange(reverted); err != nil {
			fatal(err)
		} else {
			rep2.WaitVerification()
		}

		// Arm the fault: the next reload of the swapped object fails, the
		// commit aborts, and the session rolls back to the reverted version.
		fp.FailReload(key, 1)
		t0 := time.Now()
		frep, ferr := s.ApplyChange(edited)
		rollbackD := time.Since(t0)
		if ferr == nil || frep == nil || !frep.RolledBack {
			fatal(fmt.Errorf("injected reload fault did not roll back (err=%v)", ferr))
		}

		// The same edit must succeed on the rolled-back session.
		retry := "ok"
		if rep3, err := s.ApplyChange(edited); err != nil {
			retry = "FAILED"
		} else {
			rep3.WaitVerification()
		}
		fmt.Printf("%-8s %-22s %12.1f %14.1f %10s\n",
			meshLabel(n), ch.Name, ms(rep.Total), ms(rollbackD), retry)
	}
	fmt.Println()
}

// ---------------------------------------------------------------- recovery

// recoverySession builds a PGAS session for the durability benchmarks.
// Replay targets start without the pipe — the journal's instpipe record
// recreates it.
func recoverySession(n int, withPipe bool) *core.Session {
	s := core.NewSession(pgas.TopName(n), core.Config{
		Style: codegen.StyleGrouped, CheckpointEvery: 500, Lookback: 500,
	})
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		fatal(err)
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		fatal(err)
	}
	s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
	if withPipe {
		if _, err := s.InstPipe("p0"); err != nil {
			fatal(err)
		}
	}
	return s
}

// recoveryExec replays journal records against a session — the same
// verb mapping livesimd recovery uses, minus the server plumbing.
func recoveryExec(s *core.Session) core.ExecRecord {
	return func(r *wal.Record) error {
		switch r.Verb {
		case "instpipe":
			_, err := s.InstPipe(r.Args[0])
			return err
		case "run":
			cycles, err := strconv.Atoi(r.Args[2])
			if err != nil {
				return err
			}
			return s.Run(r.Args[0], r.Args[1], cycles)
		}
		return fmt.Errorf("unknown replay verb %q", r.Verb)
	}
}

// recoveryBench measures (a) the steady-state cost of journaling every
// committed mutation to a fsync-batched WAL, exactly as livesimd does
// with a state dir (target: < 5% of mutation throughput), and (b) how
// long crash-restart replay takes per journaled change, for the full
// re-execution path and for the watermark-checkpoint fast path.
func recoveryBench(sizes []int) {
	fmt.Println("== Durability: WAL overhead and crash-recovery replay latency ==")
	fmt.Println("   (WAL on journals one record per run with 100ms group commit, the")
	fmt.Println("    livesimd default; replay re-executes a 64-change journal)")
	fmt.Printf("%-8s %12s %12s %10s %16s %16s\n",
		"PGAS", "KHz (off)", "KHz (on)", "overhead", "full (ms/chg)", "fast (ms/chg)")
	for _, n := range sizes {
		// (a) Mutation throughput with and without journaling.
		speed := func(journal func(cycle uint64)) float64 {
			s := recoverySession(n, true)
			if err := s.Run("tb0", "p0", 1024); err != nil { // warm up
				fatal(err)
			}
			start := time.Now()
			cycles := 0
			for time.Since(start) < *flagBudget {
				if err := s.Run("tb0", "p0", 256); err != nil {
					fatal(err)
				}
				cycles += 256
				if journal != nil {
					cycle, _, _ := s.PipeStatus("p0")
					journal(cycle)
				}
			}
			return float64(cycles) / time.Since(start).Seconds() / 1000
		}
		off := speed(nil)

		dir, err := os.MkdirTemp("", "lsrec")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		w, _, err := wal.Open(dir+"/bench.wal", wal.Options{SyncEvery: 100 * time.Millisecond})
		if err != nil {
			fatal(err)
		}
		on := speed(func(cycle uint64) {
			rec := &wal.Record{Type: wal.TypeCmd, Verb: "run",
				Args: []string{"tb0", "p0", "256"}, Version: "v0", Cycle: cycle}
			if err := w.Append(rec); err != nil {
				fatal(err)
			}
		})
		w.Close()

		// (b) Replay latency per journaled change, on a 64-change journal.
		const changes, chunk = 64, 50
		src := recoverySession(n, true)
		recs := []*wal.Record{{Type: wal.TypeCmd, Verb: "instpipe",
			Args: []string{"p0"}, Version: src.Version()}}
		for i := 0; i < changes; i++ {
			if err := src.Run("tb0", "p0", chunk); err != nil {
				fatal(err)
			}
			cycle, _, _ := src.PipeStatus("p0")
			recs = append(recs, &wal.Record{Type: wal.TypeCmd, Verb: "run",
				Args: []string{"tb0", "p0", strconv.Itoa(chunk)}, Version: src.Version(), Cycle: cycle})
		}

		full := recoverySession(n, false)
		t0 := time.Now()
		if _, err := full.ReplayFull(dir, recs, recoveryExec(full)); err != nil {
			fatal(err)
		}
		fullMs := ms(time.Since(t0)) / changes

		// Fast path: a watermark saved near the journal's end (as the
		// server's journal-ckpt-every cadence would) covers all but the
		// last two changes.
		if err := src.SaveCheckpoint("p0", dir+"/bench.p0.lscp"); err != nil {
			fatal(err)
		}
		cycle, histLen, _ := src.PipeStatus("p0")
		marked := append(append([]*wal.Record{}, recs...),
			&wal.Record{Type: wal.TypeMark, Pipe: "p0", Path: "bench.p0.lscp", Cycle: cycle, HistoryLen: histLen},
			&wal.Record{Type: wal.TypeCmd, Verb: "run", Args: []string{"tb0", "p0", strconv.Itoa(chunk)}, Version: src.Version()})
		if err := src.Run("tb0", "p0", chunk); err != nil {
			fatal(err)
		}
		c2, _, _ := src.PipeStatus("p0")
		marked[len(marked)-1].Cycle = c2

		fast := recoverySession(n, false)
		t1 := time.Now()
		rep, err := fast.ReplayFrom(dir, marked, recoveryExec(fast))
		if err != nil {
			fatal(err)
		}
		if !rep.FastPath {
			fmt.Fprintln(os.Stderr, "lsbench: warning: fast-path replay fell back to full re-execution")
		}
		fastMs := ms(time.Since(t1)) / float64(changes+1)

		fmt.Printf("%-8s %12.1f %12.1f %9.1f%% %16.3f %16.3f\n",
			meshLabel(n), off, on, 100*(off-on)/off, fullMs, fastMs)
	}
	fmt.Println()
}

// ---------------------------------------------------------------- util

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench:", err)
	os.Exit(1)
}
