package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/gateway"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

// failoverBench measures the replication + failover story end to end,
// in-process over unix sockets (2 livesimd + a replicating gateway):
//
//  1. ship-on-commit overhead: ms/mutation with the replication stream
//     off vs on (the "on" number buys a hot standby that has fsynced
//     every acked mutation),
//  2. failover blackout under load: the primary is Halt()ed
//     (SIGKILL-equivalent) while clients hammer the session; blackout
//     is from the kill until the promoted standby answers, and every
//     acked mutation must still be present afterwards (loss budget 0),
//  3. survivor replay: the promoted backend is itself crashed and
//     recovered from its journal; the fingerprint must be bit-identical
//     (the shipped journal replays to the same state it served live),
//  4. fencing: the original primary is resurrected on its state dir and
//     offered a mutation stamped with the promoted epoch — it must
//     fence itself and reject with the typed code.
func failoverBench() {
	fmt.Println("== Failover: WAL-shipping replication, fenced promotion under load ==")
	root, err := os.MkdirTemp("", "lsfo")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(root)

	nodes, gw, gaddr := startReplicatedFleet(root, 2)
	defer stopFleet(nodes, gw)

	c, err := client.Dial(gaddr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	const name = "fo0"
	mustResp(c.Do(&server.Request{Session: name, Verb: "create",
		Files: map[string]string{"top.v": fleetDesign}, Top: "top", CheckpointEvery: 200}))
	mustResp(c.Do(&server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}}))
	mustResp(c.Do(&server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.en", "1"}}))
	mustResp(c.Do(&server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.d", "3"}}))

	primary, standby := replicaPair(nodes, name)
	if primary == nil || standby == nil {
		fatal(fmt.Errorf("replication was not armed (primary=%v standby=%v)", primary, standby))
	}

	// 1) Ship-on-commit overhead: the stream is synchronous (an ack
	// means the standby fsynced), so its cost rides on every mutation.
	const abRuns = 150
	mustResp(c.Do(&server.Request{Session: name, Verb: "replicate", Args: []string{"stop"}}))
	offPer := timedRuns(c, name, abRuns)
	mustResp(c.Do(&server.Request{Session: name, Verb: "replicate", Args: []string{standby.addr()}}))
	onPer := timedRuns(c, name, abRuns)
	lag := sessionReplLag(primary, name)
	fmt.Printf("   ship-on-commit overhead (%d mutations each):\n", abRuns)
	fmt.Printf("%-34s %10.3fms\n", "   per mutation, replication off", float64(offPer.Nanoseconds())/1e6)
	fmt.Printf("%-34s %10.3fms   (standby fsynced before every ack; lag %d records)\n",
		"   per mutation, replication on", float64(onPer.Nanoseconds())/1e6, lag)

	// 2) Failover under load. Acked runs each advance the sim 2 cycles;
	// after promotion the cycle counter must cover every acked run —
	// the zero-lost-acked budget. (Cycles may exceed it: a mutation the
	// standby applied whose ack the dying primary never delivered is
	// at-least-once, not a loss.)
	var acked atomic.Int64
	startCycles := parseCycle(okResp(c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})).Output)
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc, err := client.Dial(gaddr)
			if err != nil {
				fatal(err)
			}
			defer lc.Close()
			req := &server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "2"}}
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := lc.Do(req)
				if err != nil {
					return // gateway conn torn during shutdown
				}
				if resp.OK {
					acked.Add(1)
				}
				// Failed requests (unavailable during the blackout) are
				// simply not acked — the client would retry.
			}
		}()
	}
	time.Sleep(300 * time.Millisecond) // accumulate replicated load
	t0 := time.Now()
	primary.srv.Halt()
	var blackout time.Duration
	for {
		resp, err := c.Do(&server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "2"}})
		if err != nil {
			fatal(err)
		}
		if resp.OK {
			acked.Add(1)
			blackout = time.Since(t0)
			break
		}
		if time.Since(t0) > 30*time.Second {
			fatal(fmt.Errorf("failover never completed: %s (%s)", resp.Error, resp.Code))
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopLoad)
	wg.Wait()

	endCycles := parseCycle(okResp(c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})).Output)
	ackedCycles := startCycles + 2*acked.Load()
	lost := int64(0)
	if endCycles < ackedCycles {
		lost = (ackedCycles - endCycles + 1) / 2
	}
	verdict := "PASS"
	if lost > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("   failover under load (grace 300ms, probe 50ms):\n")
	fmt.Printf("%-34s %10.1fms   (kill -> promoted standby answering)\n",
		"   blackout", float64(blackout.Nanoseconds())/1e6)
	fmt.Printf("%-34s %10d   of %d acked; budget 0: %s\n",
		"   lost acked mutations", lost, acked.Load(), verdict)

	// 3) Survivor replay: crash the promoted copy and recover it from
	// the journal the stream built — the fingerprint must not move.
	livePeek := okResp(c.Do(&server.Request{Session: name, Verb: "peek", Args: []string{"p0", "top.u0.total"}})).Output
	liveCycle := okResp(c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})).Output
	for i, n := range nodes {
		if n == standby {
			n.srv.Halt()
			nodes[i] = startFleetNode(n.dir, n.sock, true)
			standby = nodes[i]
		}
	}
	replayPeek, replayCycle := "", ""
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		p, perr := c.Do(&server.Request{Session: name, Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		if perr == nil && p.OK {
			replayPeek = p.Output
			replayCycle = okResp(c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})).Output
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	replayVerdict := "PASS"
	if replayPeek != livePeek || replayCycle != liveCycle {
		replayVerdict = "FAIL"
	}
	fmt.Printf("%-34s %10s   (promoted copy crash-recovered bit-identical)\n",
		"   survivor replay fingerprint", replayVerdict)

	// 4) Fencing: resurrect the original primary and offer it a mutation
	// carrying the fleet's epoch. It must self-fence with the typed code.
	for i, n := range nodes {
		if n == primary {
			nodes[i] = startFleetNode(n.dir, n.sock, true)
			primary = nodes[i]
		}
	}
	fenceVerdict := "FAIL"
	dc, err := client.Dial(primary.addr())
	if err == nil {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, derr := dc.Do(&server.Request{Session: name, Verb: "run",
				Args: []string{"clock", "p0", "2"}, Epoch: promotedEpoch(standby, name)})
			if derr != nil {
				break
			}
			if resp.Code == server.CodeFenced {
				fenceVerdict = "PASS"
				break
			}
			if resp.Code == server.CodeNoSession || resp.Code == server.CodeMoved {
				// The reconcile sweep already closed the corpse — equally
				// split-brain-safe, but keep probing briefly for the fence.
				fenceVerdict = "PASS (swept)"
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		dc.Close()
	}
	fmt.Printf("%-34s %10s   (stale primary rejected with typed code)\n",
		"   resurrected primary fenced", fenceVerdict)
	fmt.Println()
}

// startReplicatedFleet is startFleet with replication + fast failover
// armed at the gateway.
func startReplicatedFleet(root string, count int) ([]*fleetNode, *gateway.Gateway, string) {
	nodes := make([]*fleetNode, 0, count)
	specs := make([]gateway.BackendSpec, 0, count)
	for i := 0; i < count; i++ {
		dir := filepath.Join(root, fmt.Sprintf("n%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		n := startFleetNode(dir, filepath.Join(root, fmt.Sprintf("d%d.sock", i)), true)
		nodes = append(nodes, n)
		specs = append(specs, gateway.BackendSpec{Addr: n.addr()})
	}
	gw, err := gateway.New(gateway.Config{
		Backends:      specs,
		HealthEvery:   50 * time.Millisecond,
		Replicate:     true,
		FailoverGrace: 300 * time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}
	gsock := filepath.Join(root, "g.sock")
	ln, err := net.Listen("unix", gsock)
	if err != nil {
		fatal(err)
	}
	go gw.Serve(ln)
	return nodes, gw, "unix:" + gsock
}

// replicaPair finds which node hosts the session as primary and which
// as follower.
func replicaPair(nodes []*fleetNode, name string) (primary, standby *fleetNode) {
	for _, n := range nodes {
		for _, info := range sessionRows(n) {
			if info.Name != name {
				continue
			}
			if info.Follower {
				standby = n
			} else {
				primary = n
			}
		}
	}
	return primary, standby
}

func sessionRows(n *fleetNode) []server.SessionInfo {
	c, err := client.Dial(n.addr())
	if err != nil {
		return nil
	}
	defer c.Close()
	resp, err := c.Do(&server.Request{Verb: "sessions"})
	if err != nil || !resp.OK || resp.Data == nil {
		return nil
	}
	var infos []server.SessionInfo
	json.Unmarshal(resp.Data, &infos)
	return infos
}

func sessionReplLag(n *fleetNode, name string) uint64 {
	for _, info := range sessionRows(n) {
		if info.Name == name {
			return info.ReplLag
		}
	}
	return 0
}

func promotedEpoch(n *fleetNode, name string) uint64 {
	for _, info := range sessionRows(n) {
		if info.Name == name {
			return info.Epoch
		}
	}
	return 1
}

// timedRuns issues n 2-cycle runs and returns the mean wall time per
// mutation.
func timedRuns(c *client.Client, name string, n int) time.Duration {
	req := &server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "2"}}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		mustResp(c.Do(req))
	}
	return time.Since(t0) / time.Duration(n)
}

// okResp is mustResp that hands the response back, for reading Output.
func okResp(resp *server.Response, err error) *server.Response {
	mustResp(resp, err)
	return resp
}

// parseCycle extracts the cycle count from the cycle verb's
// "  <n> (version v…)" output.
func parseCycle(out string) int64 {
	var n int64
	fmt.Sscanf(strings.TrimSpace(out), "%d", &n)
	return n
}
