package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"livesim/internal/obs"
	"livesim/internal/pgas"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

// obsBench quantifies what the observability plane costs the hot path:
// hot-reload (apply) wire latency against an in-process livesimd in
// three arms — "off" (span store and flight recorder explicitly
// disabled, no admin plane), "trace" (span store + flight recorder on,
// the always-on tracing default), and "admin" (tracing plus the admin
// HTTP listener with a background /metrics scraper hitting it every
// second — an aggressive Prometheus scrape interval; the default is
// 15s — plus slow-request tracking and the event ring). The acceptance
// bar is <2% added latency per step; the plane is meant to be free
// enough to leave on.
func obsBench() {
	fmt.Println("== Observability overhead: hot-reload latency by obs-plane arm ==")
	fmt.Printf("   workload: alternating apply (1-node PGAS, %s) over a unix socket,\n", pgas.Changes[0].Name)
	fmt.Printf("   %v per arm; \"trace\" adds the span store + flight recorder,\n", *flagBudget)
	fmt.Println("   \"admin\" adds /metrics scrapes every 1s on top")

	// ABCCBA order with pooled samples, so machine drift (thermal, cache
	// warmth) cancels instead of biasing whichever arm ran last.
	base := measureObsArm(armOff)
	trace := measureObsArm(armTrace)
	admin := measureObsArm(armAdmin)
	admin = admin.pool(measureObsArm(armAdmin))
	trace = trace.pool(measureObsArm(armTrace))
	base = base.pool(measureObsArm(armOff))

	over := func(a obsArm) string {
		if base.p50 <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.2f%%", (a.p50-base.p50)/base.p50*100)
	}
	fmt.Printf("%-10s %8s %12s %12s %12s\n", "arm", "applies", "p50(ms)", "p99(ms)", "overhead")
	fmt.Printf("%-10s %8d %12.3f %12.3f %12s\n", "off", base.n, base.p50*1e3, base.p99*1e3, "-")
	fmt.Printf("%-10s %8d %12.3f %12.3f %12s\n", "trace", trace.n, trace.p50*1e3, trace.p99*1e3, over(trace))
	fmt.Printf("%-10s %8d %12.3f %12.3f %12s\n\n", "admin", admin.n, admin.p50*1e3, admin.p99*1e3, over(admin))
}

// Arms of the obs benchmark.
const (
	armOff   = iota // span store + flight recorder disabled, no admin
	armTrace        // span store + flight recorder on (the default)
	armAdmin        // armTrace + admin plane with 1s /metrics scrapes
)

type obsArm struct {
	lat      []float64 // sorted seconds
	n        int
	p50, p99 float64 // seconds
}

// pool merges two arms' samples and recomputes the quantiles.
func (a obsArm) pool(b obsArm) obsArm {
	lat := append(append([]float64(nil), a.lat...), b.lat...)
	sort.Float64s(lat)
	return obsArm{lat: lat, n: len(lat), p50: obsPctl(lat, 0.50), p99: obsPctl(lat, 0.99)}
}

func measureObsArm(arm int) obsArm {
	dir, err := os.MkdirTemp("", "lsb")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		fatal(err)
	}
	admin := arm == armAdmin
	cfg := server.Config{QueueDepth: 8, Metrics: obs.NewRegistry()}
	if arm == armOff {
		// The span store and flight recorder default on; the baseline arm
		// must disable them explicitly (negative caps) to measure them.
		cfg.SpanStoreCap = -1
		cfg.FlightRecorderCap = -1
		cfg.BlackboxFlushEvery = -1
	}
	if admin {
		cfg.SlowRequest = time.Second
		cfg.EventRingCap = 256
	}
	srv := server.New(cfg)
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(ctx)
	}()

	scrapeDone := make(chan struct{})
	if admin {
		aln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		ah := &http.Server{Handler: srv.AdminHandler()}
		go ah.Serve(aln)
		defer ah.Close()
		url := "http://" + aln.Addr().String() + "/metrics"
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-scrapeDone:
					return
				case <-tick.C:
					if resp, err := http.Get(url); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	defer close(scrapeDone)

	c, err := client.Dial("unix:" + sock)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	// Huge checkpoint interval: no background verification, so the
	// measured latency is purely compile+swap+wire — the ERD loop.
	mustResp(c.Do(&server.Request{Session: "obs", Verb: "create", PGAS: 1, CheckpointEvery: 1_000_000}))
	mustResp(c.Do(&server.Request{Session: "obs", Verb: "instpipe", Args: []string{"p0"}}))
	mustResp(c.Do(&server.Request{Session: "obs", Verb: "run", Args: []string{"tb0", "p0", "40"}}))

	orig := pgas.Source(1)
	edited, err := pgas.Changes[0].Apply(orig)
	if err != nil {
		fatal(err)
	}
	files := [2]map[string]string{edited.Files, orig.Files}

	// Warm both design versions' compile caches before timing.
	for i := 0; i < 2; i++ {
		mustResp(c.Do(&server.Request{Session: "obs", Verb: "apply", Files: files[i]}))
	}

	var lat []float64
	stop := time.Now().Add(*flagBudget)
	for i := 0; time.Now().Before(stop); i++ {
		t0 := time.Now()
		mustResp(c.Do(&server.Request{Session: "obs", Verb: "apply", Files: files[i%2]}))
		lat = append(lat, time.Since(t0).Seconds())
	}
	mustResp(c.Do(&server.Request{Session: "obs", Verb: "close"}))

	sort.Float64s(lat)
	return obsArm{lat: lat, n: len(lat), p50: obsPctl(lat, 0.50), p99: obsPctl(lat, 0.99)}
}

// obsPctl reads the q-th percentile from an already-sorted sample.
func obsPctl(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
