package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/gateway"
	"livesim/internal/server"
	"livesim/internal/server/client"
)

// fleetBench measures the fleet story end to end, all in-process over
// unix sockets:
//
//  1. aggregate throughput through the gateway as the backend pool
//     grows 1 -> 2 -> 4 (16 clients, disjoint sessions, rendezvous
//     placement),
//  2. live-migration blackout under load: a session is migrated back
//     and forth while clients hammer it; the report blackout and the
//     worst client-observed request latency bound each other,
//  3. kill-one durability: backends journal with fsync-per-append, one
//     is crashed mid-load and restarted, and every committed mutation
//     must still be there — fingerprints compared through the gateway.
const fleetDesign = `
module accum (input clk, input en, input [15:0] d, output reg [31:0] total);
  always @(posedge clk) begin
    if (en) total <= total + d;
  end
endmodule

module top (input clk, input en, input [15:0] d, output [31:0] total);
  accum u0 (.clk(clk), .en(en), .d(d), .total(total));
endmodule
`

// fleetNode is one in-process livesimd, restartable on its state dir.
type fleetNode struct {
	dir, sock string
	srv       *server.Server
}

func startFleetNode(dir, sock string, durable bool) *fleetNode {
	n := &fleetNode{dir: dir, sock: sock}
	cfg := server.Config{QueueDepth: 64}
	if durable {
		// fsync on every append: an acked mutation is a committed one,
		// which is what the kill-one experiment asserts about.
		cfg.StateDir = dir
		cfg.WALSyncEvery = -1
	}
	srv := server.New(cfg)
	if durable {
		if err := srv.Recover(); err != nil {
			fatal(err)
		}
		srv.WaitRecovered()
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		fatal(err)
	}
	go srv.Serve(ln)
	n.srv = srv
	return n
}

func (n *fleetNode) addr() string { return "unix:" + n.sock }

func startFleet(root string, count int, durable bool) ([]*fleetNode, *gateway.Gateway, string) {
	nodes := make([]*fleetNode, 0, count)
	specs := make([]gateway.BackendSpec, 0, count)
	for i := 0; i < count; i++ {
		dir := filepath.Join(root, fmt.Sprintf("n%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		n := startFleetNode(dir, filepath.Join(root, fmt.Sprintf("d%d.sock", i)), durable)
		nodes = append(nodes, n)
		specs = append(specs, gateway.BackendSpec{Addr: n.addr()})
	}
	gw, err := gateway.New(gateway.Config{Backends: specs, HealthEvery: 100 * time.Millisecond})
	if err != nil {
		fatal(err)
	}
	gsock := filepath.Join(root, "g.sock")
	ln, err := net.Listen("unix", gsock)
	if err != nil {
		fatal(err)
	}
	go gw.Serve(ln)
	return nodes, gw, "unix:" + gsock
}

func stopFleet(nodes []*fleetNode, gw *gateway.Gateway) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gw.Shutdown(ctx)
	for _, n := range nodes {
		n.srv.Shutdown(ctx)
	}
}

func fleetBench() {
	fmt.Println("== Fleet: gateway throughput, migration blackout, kill-one durability ==")
	root, err := os.MkdirTemp("", "lsf")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(root)

	fleetThroughput(root)
	fleetMigrationBlackout(root)
	fleetKillOne(root)
	fmt.Println()
}

// fleetThroughput: 16 clients, disjoint PGAS sessions placed by the
// gateway, aggregate req/s as the pool grows.
func fleetThroughput(root string) {
	fmt.Printf("   aggregate req/s through the gateway, 16 clients, %v per point\n", *flagBudget)
	fmt.Printf("%-10s %12s %12s %10s\n", "backends", "requests", "req/s", "errors")
	for round, nBackends := range []int{1, 2, 4} {
		sub := filepath.Join(root, fmt.Sprintf("tput%d", nBackends))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			fatal(err)
		}
		nodes, gw, gaddr := startFleet(sub, nBackends, false)
		var ok, bad atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		stop := start.Add(*flagBudget)
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := client.Dial(gaddr)
				if err != nil {
					fatal(err)
				}
				defer c.Close()
				name := fmt.Sprintf("f%d_%d", round, i)
				mustResp(c.Do(&server.Request{Session: name, Verb: "create", PGAS: 1, CheckpointEvery: 100_000}))
				mustResp(c.Do(&server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}}))
				req := &server.Request{Session: name, Verb: "run", Args: []string{"tb0", "p0", "4"}}
				for time.Now().Before(stop) {
					resp, err := c.Do(req)
					if err != nil {
						fatal(err)
					}
					if resp.OK {
						ok.Add(1)
					} else {
						bad.Add(1)
					}
				}
			}(i)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		fmt.Printf("%-10d %12d %12.0f %10d\n", nBackends, ok.Load(), float64(ok.Load())/el, bad.Load())
		stopFleet(nodes, gw)
	}
}

// fleetMigrationBlackout: migrate a live session back and forth while
// clients hammer it. Two numbers matter: what the gateway reports as
// the freeze window, and the worst latency any client actually saw.
func fleetMigrationBlackout(root string) {
	sub := filepath.Join(root, "mig")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		fatal(err)
	}
	nodes, gw, gaddr := startFleet(sub, 2, true)
	defer stopFleet(nodes, gw)

	c, err := client.Dial(gaddr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	mustResp(c.Do(&server.Request{Session: "mig0", Verb: "create",
		Files: map[string]string{"top.v": fleetDesign}, Top: "top", CheckpointEvery: 50}))
	mustResp(c.Do(&server.Request{Session: "mig0", Verb: "instpipe", Args: []string{"p0"}}))
	mustResp(c.Do(&server.Request{Session: "mig0", Verb: "poke", Args: []string{"p0", "top.en", "1"}}))

	const migrations = 8
	var worstReq atomic.Int64 // nanoseconds
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lc, err := client.Dial(gaddr)
			if err != nil {
				fatal(err)
			}
			defer lc.Close()
			req := &server.Request{Session: "mig0", Verb: "run", Args: []string{"clock", "p0", "2"}}
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				t0 := time.Now()
				resp, err := lc.Do(req)
				if err != nil {
					fatal(err)
				}
				if !resp.OK {
					fatal(fmt.Errorf("load request failed mid-migration: %s (%s)", resp.Error, resp.Code))
				}
				if d := time.Since(t0).Nanoseconds(); d > worstReq.Load() {
					worstReq.Store(d)
				}
			}
		}()
	}

	blackouts := make([]float64, 0, migrations)
	for m := 0; m < migrations; m++ {
		time.Sleep(50 * time.Millisecond) // let load accumulate journal between moves
		resp, err := c.Do(&server.Request{Session: "mig0", Verb: "migrate"})
		if err != nil {
			fatal(err)
		}
		if !resp.OK {
			fatal(fmt.Errorf("migration %d failed: %s (%s)", m, resp.Error, resp.Code))
		}
		var rep gateway.MigrationReport
		if err := json.Unmarshal(resp.Data, &rep); err != nil {
			fatal(err)
		}
		blackouts = append(blackouts, rep.BlackoutMs)
	}
	close(stopLoad)
	wg.Wait()

	sort.Float64s(blackouts)
	p50 := blackouts[len(blackouts)/2]
	max := blackouts[len(blackouts)-1]
	verdict := "PASS"
	if max >= 100 {
		verdict = "OVER-BUDGET"
	}
	fmt.Printf("   migration blackout over %d live migrations under load:\n", migrations)
	fmt.Printf("%-28s %10.2fms %10.2fms   budget <100ms: %s\n", "   blackout p50 / max", p50, max, verdict)
	fmt.Printf("%-28s %10.2fms\n", "   worst client request", float64(worstReq.Load())/1e6)
}

// fleetKillOne: commit mutations through the gateway, SIGKILL-style
// halt one backend, restart it, and count lost fingerprints (must be
// zero: WALSyncEvery -1 means every ack was durable).
func fleetKillOne(root string) {
	sub := filepath.Join(root, "kill")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		fatal(err)
	}
	nodes, gw, gaddr := startFleet(sub, 2, true)
	defer stopFleet(nodes, gw)

	c, err := client.Dial(gaddr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	names := []string{"k0", "k1", "k2", "k3"}
	want := map[string][2]string{}
	for _, name := range names {
		mustResp(c.Do(&server.Request{Session: name, Verb: "create",
			Files: map[string]string{"top.v": fleetDesign}, Top: "top", CheckpointEvery: 25}))
		mustResp(c.Do(&server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}}))
		mustResp(c.Do(&server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.en", "1"}}))
		mustResp(c.Do(&server.Request{Session: name, Verb: "poke", Args: []string{"p0", "top.d", "3"}}))
		mustResp(c.Do(&server.Request{Session: name, Verb: "run", Args: []string{"clock", "p0", "40"}}))
		peek, perr := c.Do(&server.Request{Session: name, Verb: "peek", Args: []string{"p0", "top.u0.total"}})
		cyc, cerr := c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})
		if perr != nil || cerr != nil || !peek.OK || !cyc.OK {
			fatal(fmt.Errorf("fingerprinting %s failed", name))
		}
		want[name] = [2]string{peek.Output, cyc.Output}
	}

	// Crash whichever backend hosts k0 (rendezvous guarantees someone does).
	victim := 0
	if hostsSession(nodes[1], "k0") {
		victim = 1
	}
	t0 := time.Now()
	nodes[victim].srv.Halt()
	nodes[victim] = startFleetNode(nodes[victim].dir, nodes[victim].sock, true)
	restart := time.Since(t0)

	// Wait until every session answers again, then compare fingerprints.
	lost := 0
	for _, name := range names {
		deadline := time.Now().Add(10 * time.Second)
		var peek, cyc *server.Response
		for time.Now().Before(deadline) {
			peek, _ = c.Do(&server.Request{Session: name, Verb: "peek", Args: []string{"p0", "top.u0.total"}})
			if peek != nil && peek.OK {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		cyc, _ = c.Do(&server.Request{Session: name, Verb: "cycle", Args: []string{"p0"}})
		if peek == nil || cyc == nil || !peek.OK || !cyc.OK ||
			peek.Output != want[name][0] || cyc.Output != want[name][1] {
			lost++
		}
	}
	verdict := "PASS"
	if lost > 0 {
		verdict = "FAIL"
	}
	fmt.Printf("   kill-one durability: backend crashed + recovered in %v;\n", restart.Round(time.Millisecond))
	fmt.Printf("   committed mutations lost across %d sessions: %d   %s\n", len(names), lost, verdict)
}

func hostsSession(n *fleetNode, name string) bool {
	c, err := client.Dial(n.addr())
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(&server.Request{Verb: "sessions"})
	if err != nil || !resp.OK {
		return false
	}
	var infos []server.SessionInfo
	if resp.Data != nil {
		json.Unmarshal(resp.Data, &infos)
	}
	for _, info := range infos {
		if info.Name == name {
			return true
		}
	}
	return false
}
