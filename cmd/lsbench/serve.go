package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"livesim/internal/server"
	"livesim/internal/server/client"
)

// serveBench measures livesimd wire-protocol throughput: an in-process
// server on a unix socket, N concurrent clients each driving a disjoint
// 1-node PGAS session with `run` requests for the time budget. Reported
// req/s counts completed OK responses; any non-OK response (there should
// be none at this queue depth) is reported in its own column.
func serveBench() {
	fmt.Println("== Server throughput: req/s vs concurrent clients (in-process livesimd) ==")
	fmt.Println("   workload: run tb0 p0 4 against a per-client 1-node PGAS session,")
	fmt.Printf("   unix socket transport, %v per point\n", *flagBudget)

	dir, err := os.MkdirTemp("", "lsb")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		fatal(err)
	}
	reg := benchRegistry()
	srv := server.New(server.Config{QueueDepth: 64, Metrics: reg})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(ctx)
	}()

	fmt.Printf("%-10s %12s %12s %12s %10s\n", "clients", "requests", "req/s", "cycles/s", "errors")
	for round, nClients := range []int{1, 4, 16} {
		var ok, bad atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		stop := start.Add(*flagBudget)
		for i := 0; i < nClients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := client.Dial("unix:" + sock)
				if err != nil {
					fatal(err)
				}
				defer c.Close()
				name := fmt.Sprintf("b%d_%d", round, i)
				mustResp(c.Do(&server.Request{Session: name, Verb: "create", PGAS: 1, CheckpointEvery: 100_000}))
				mustResp(c.Do(&server.Request{Session: name, Verb: "instpipe", Args: []string{"p0"}}))
				req := &server.Request{Session: name, Verb: "run", Args: []string{"tb0", "p0", "4"}}
				for time.Now().Before(stop) {
					resp, err := c.Do(req)
					if err != nil {
						fatal(err)
					}
					if resp.OK {
						ok.Add(1)
					} else {
						bad.Add(1)
					}
				}
				mustResp(c.Do(&server.Request{Session: name, Verb: "close"}))
			}(i)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		n := ok.Load()
		fmt.Printf("%-10d %12d %12.0f %12.0f %10d\n",
			nClients, n, float64(n)/el, float64(n*4)/el, bad.Load())
	}
	printSnapshot("serve", reg)
	fmt.Println()
}

func shutdownCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func mustResp(resp *server.Response, err error) {
	if err != nil {
		fatal(err)
	}
	if !resp.OK {
		fatal(fmt.Errorf("%s (%s)", resp.Error, resp.Code))
	}
}
