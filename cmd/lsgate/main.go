// Command lsgate is the LiveSim fleet gateway: a stateless NDJSON
// proxy that fronts a pool of livesimd backends, speaking the exact
// wire protocol clients already use (see internal/gateway). Sessions
// are placed by rendezvous hashing, routed to whichever backend hosts
// them, live-migrated between backends with the `migrate` verb, and a
// whole backend is emptied for maintenance with `drain <addr>`.
//
// Usage:
//
//	lsgate -listen :9300 -backend :9310 -backend :9320
//	lsgate -unix /run/lsgate.sock \
//	       -backend unix:/run/ls1.sock -backend unix:/run/ls2.sock
//	lsgate -listen :9300 -backend :9310=127.0.0.1:9311   # wire=admin
//	lsgate -listen :9300 -backend :9310 -backend :9320 \
//	       -replicate -failover-grace 2s              # hot standbys + failover
//
// A backend spec is its wire address, optionally "=adminaddr" to let
// the health checker read the richer /healthz states (recovering,
// disk_emergency) instead of inferring from wire pings alone. Drive
// the gateway with `livesim -connect <addr>` — every session verb is
// forwarded; `backends`, `sessions`, `migrate`, `drain` and `trace
// <id>` (fleet-wide span assembly) are the fleet-level additions. The
// admin plane serves /metrics, /healthz, /backendz, /eventsz, /tracez
// and /flightz.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"livesim/internal/gateway"
	"livesim/internal/obs"
)

// backendFlags collects repeated -backend flags.
type backendFlags []gateway.BackendSpec

func (b *backendFlags) String() string {
	parts := make([]string, 0, len(*b))
	for _, spec := range *b {
		parts = append(parts, spec.Addr)
	}
	return strings.Join(parts, ",")
}

func (b *backendFlags) Set(v string) error {
	spec := gateway.BackendSpec{Addr: v}
	if i := strings.IndexByte(v, '='); i >= 0 {
		spec.Addr, spec.AdminAddr = v[:i], v[i+1:]
	}
	if spec.Addr == "" {
		return fmt.Errorf("empty backend address")
	}
	*b = append(*b, spec)
	return nil
}

var (
	flagListen   = flag.String("listen", "", "TCP address to listen on (e.g. :9300)")
	flagUnix     = flag.String("unix", "", "unix socket path to listen on")
	flagAdmin    = flag.String("admin-addr", "", "HTTP admin endpoint serving /metrics, /healthz, /backendz, /eventsz, /tracez, /flightz")
	flagHealth   = flag.Duration("health-every", 500*time.Millisecond, "backend health probe cadence")
	flagProbeTO  = flag.Duration("probe-timeout", 2*time.Second, "per-probe and per-discovery timeout")
	flagFwdTO    = flag.Duration("forward-timeout", 60*time.Second, "per-forwarded-request timeout")
	flagMigTO    = flag.Duration("migrate-timeout", 15*time.Second, "per-migration timeout, including the in-flight drain wait")
	flagLogLevel = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	flagEvents   = flag.Int("event-ring", 256, "operational event ring capacity")
	flagMetrics  = flag.Bool("metrics", true, "print the gateway metrics registry on exit")

	// Distributed tracing & flight recorder (see README "Distributed
	// tracing & flight recorder").
	flagProcName   = flag.String("proc-name", "", "process label in assembled fleet traces and blackbox dumps (default lsgate:<pid>)")
	flagTraceStore = flag.Int("trace-store", 0, "in-memory span store capacity in traces, for `trace <id>`/tracez (0 = default 256, negative = off)")
	flagTraceSlow  = flag.Duration("trace-slow", 0, "tail-sampling threshold: retain completed traces at least this slow, or errored (0 = default 250ms)")
	flagFlight     = flag.Int("flight", 0, "flight-recorder ring capacity in span/event lines, for /flightz and blackbox dumps (0 = default 512, negative = off)")
	flagBlackbox   = flag.String("blackbox-dir", "", "directory for blackbox-<ts>.jsonl dumps on abnormal exits (empty = no dumps)")
	flagBBFlush    = flag.Duration("blackbox-flush", 0, "periodic blackbox flush cadence — the record surviving SIGKILL (0 = default 2s, negative = off)")

	// Replication & failover (see README "Replication & failover").
	flagReplicate = flag.Bool("replicate", false, "arm session replication: every placed session gets a hot standby on the rendezvous next-best backend, promoted automatically on primary failure")
	flagFailGrace = flag.Duration("failover-grace", 2*time.Second, "how long a primary must stay down before its sessions fail over to their standbys")
)

func main() {
	os.Exit(run())
}

func run() int {
	var backends backendFlags
	flag.Var(&backends, "backend", "backend wire address, optionally addr=adminaddr (repeatable)")
	flag.Parse()

	level, lerr := obs.ParseLevel(*flagLogLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "lsgate:", lerr)
		return 2
	}
	logger := obs.NewLogger(os.Stderr, level)
	if *flagListen == "" && *flagUnix == "" {
		fmt.Fprintln(os.Stderr, "need -listen and/or -unix; see -help")
		return 2
	}
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "need at least one -backend; see -help")
		return 2
	}

	reg := obs.NewRegistry()
	gw, err := gateway.New(gateway.Config{
		Backends:       backends,
		HealthEvery:    *flagHealth,
		ProbeTimeout:   *flagProbeTO,
		ForwardTimeout: *flagFwdTO,
		MigrateTimeout: *flagMigTO,
		Replicate:      *flagReplicate,
		FailoverGrace:  *flagFailGrace,
		Metrics:        reg,
		Log:            logger,
		EventRingCap:   *flagEvents,

		ProcName:           *flagProcName,
		SpanStoreCap:       *flagTraceStore,
		TraceSlow:          *flagTraceSlow,
		FlightRecorderCap:  *flagFlight,
		BlackboxDir:        *flagBlackbox,
		BlackboxFlushEvery: *flagBBFlush,
	})
	if err != nil {
		logger.Error("gateway init failed", obs.Str("err", err.Error()))
		return 1
	}
	if *flagMetrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "-- gateway metrics --")
			reg.WriteText(os.Stderr)
		}()
	}

	if *flagAdmin != "" {
		aln, err := net.Listen("tcp", *flagAdmin)
		if err != nil {
			logger.Error("admin listen failed", obs.Str("addr", *flagAdmin), obs.Str("err", err.Error()))
			return 1
		}
		admin := &http.Server{Handler: adminHandler(gw, reg)}
		go admin.Serve(aln)
		defer admin.Close()
		logger.Info("admin endpoint listening", obs.Str("addr", aln.Addr().String()))
	}

	serveErrs := make(chan error, 2)
	if *flagListen != "" {
		ln, err := net.Listen("tcp", *flagListen)
		if err != nil {
			logger.Error("tcp listen failed", obs.Str("addr", *flagListen), obs.Str("err", err.Error()))
			return 1
		}
		logger.Info("listening", obs.Str("net", "tcp"), obs.Str("addr", ln.Addr().String()))
		go func() { serveErrs <- gw.Serve(ln) }()
	}
	if *flagUnix != "" {
		os.Remove(*flagUnix)
		ln, err := net.Listen("unix", *flagUnix)
		if err != nil {
			logger.Error("unix listen failed", obs.Str("addr", *flagUnix), obs.Str("err", err.Error()))
			return 1
		}
		defer os.Remove(*flagUnix)
		logger.Info("listening", obs.Str("net", "unix"), obs.Str("addr", *flagUnix))
		go func() { serveErrs <- gw.Serve(ln) }()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		logger.Info("signal received; shutting down", obs.Str("signal", sig.String()))
	case err := <-serveErrs:
		if err != nil {
			logger.Error("serve failed", obs.Str("err", err.Error()))
			return 1
		}
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	gw.Shutdown(ctx)
	logger.Info("gateway stopped")
	return 0
}

// adminHandler is lsgate's HTTP surface: /metrics (Prometheus text),
// /healthz (200 as long as the gateway runs — it is stateless, so
// liveness is the only meaningful signal; the body carries the pool
// summary), /backendz (the `backends` verb as JSON), /eventsz, /tracez
// (fleet-assembled trace for ?id=) and /flightz (the black-box ring).
func adminHandler(gw *gateway.Gateway, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		pw := obs.NewPromWriter("lsgate_")
		pw.AddSnapshot(nil, reg.Snapshot())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw.Write(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := gw.AdminPing()
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(resp, '\n'))
	})
	mux.HandleFunc("/backendz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(gw.AdminBackends(), '\n'))
	})
	mux.HandleFunc("/eventsz", func(w http.ResponseWriter, r *http.Request) {
		body, _ := json.Marshal(gw.Events().All())
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	})
	// /tracez assembles one trace's spans across the whole fleet (the
	// HTTP twin of the `trace <id>` verb); /flightz is the gateway's own
	// black-box ring.
	mux.HandleFunc("/tracez", gw.HandleTracez)
	mux.HandleFunc("/flightz", gw.HandleFlightz)
	return mux
}
