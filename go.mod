module livesim

go 1.22
