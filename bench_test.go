package livesim

// Benchmarks regenerating the paper's evaluation, one per table/figure.
// `go test -bench=. -benchmem` runs small configurations; cmd/lsbench
// runs the full parameter sweeps and prints the paper-style tables.

import (
	"fmt"
	"testing"

	"livesim/internal/checkpoint"
	"livesim/internal/codegen"
	"livesim/internal/core"
	"livesim/internal/flatsim"
	"livesim/internal/hdl/ast"
	"livesim/internal/hdl/elab"
	"livesim/internal/hdl/parser"
	"livesim/internal/hostmodel"
	"livesim/internal/livecompiler"
	"livesim/internal/pgas"
	"livesim/internal/sim"
	"livesim/internal/verify"
	"livesim/internal/vm"
)

func buildLiveSim(b *testing.B, n int) *sim.Sim {
	b.Helper()
	objs, top, err := pgas.Build(n, codegen.StyleGrouped)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.ResolverFunc(func(k string) (*vm.Object, error) {
		if o, ok := objs[k]; ok {
			return o, nil
		}
		return nil, fmt.Errorf("no object %q", k)
	}), top)
	if err != nil {
		b.Fatal(err)
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := pgas.LoadImage(s, n, i, images[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func buildFlatSim(b *testing.B, n int) *flatsim.Sim {
	b.Helper()
	srcs := map[string]*ast.Module{}
	for name, text := range pgas.DesignSource(n) {
		sf, err := parser.ParseFile(name, text)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range sf.Modules {
			srcs[m.Name] = m
		}
	}
	d, err := elab.Elaborate(srcs, pgas.TopName(n), nil)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := flatsim.Compile(d, codegen.StyleMux)
	if err != nil {
		b.Fatal(err)
	}
	fs := flatsim.NewSim(obj)
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("n%d.u_mem.mem", i)
		for w, v := range images[i] {
			if err := fs.PokeMem(path, uint64(w), v); err != nil {
				b.Fatal(err)
			}
		}
	}
	return fs
}

// Figure 7 (simulation-speed series): cycles/sec for both simulators.
func BenchmarkFig7SimLiveSim(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(pgasName(n), func(b *testing.B) {
			s := buildLiveSim(b, n)
			b.ResetTimer()
			if err := s.Tick(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFig7SimFlat(b *testing.B) {
	for _, n := range []int{1, 4} {
		b.Run(pgasName(n), func(b *testing.B) {
			s := buildFlatSim(b, n)
			b.ResetTimer()
			s.Tick(b.N)
		})
	}
}

func pgasName(n int) string {
	return fmt.Sprintf("nodes%d", n)
}

// Figure 8: the full hot-reload ERD loop (edit -> compile -> swap ->
// checkpoint reload -> re-execute).
func BenchmarkFig8HotReload(b *testing.B) {
	const n = 1
	s := core.NewSession(pgas.TopName(n), core.Config{
		Style: codegen.StyleGrouped, CheckpointEvery: 500, Lookback: 500,
	})
	if _, err := s.LoadDesign(pgas.Source(n)); err != nil {
		b.Fatal(err)
	}
	images, err := pgas.ComputeImages(n, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	s.RegisterTestbench("tb0", pgas.NewTestbench(n, images))
	if _, err := s.InstPipe("p0"); err != nil {
		b.Fatal(err)
	}
	if err := s.Run("tb0", "p0", 2000); err != nil {
		b.Fatal(err)
	}
	edits := []int{0, 3} // alternate two behavioural changes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var src = pgas.Source(n)
		if i%2 == 0 {
			src, err = pgas.Changes[edits[0]].Apply(src)
		} else {
			src, err = pgas.Changes[edits[1]].Apply(src)
		}
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.ApplyChange(src)
		if err != nil {
			b.Fatal(err)
		}
		rep.WaitVerification()
	}
}

// Table VII: profiled execution through the host cache model.
func BenchmarkTable7Profiled(b *testing.B) {
	s := buildLiveSim(b, 4)
	host := hostmodel.NewHost()
	b.ResetTimer()
	if err := s.TickProfiled(b.N, host); err != nil {
		b.Fatal(err)
	}
}

// Table VIII: compilation paths.
func BenchmarkTable8CompileLiveFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := livecompiler.New(pgas.TopName(4), codegen.StyleGrouped, nil)
		if _, err := c.Build(pgas.Source(4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8CompileLiveIncremental(b *testing.B) {
	c := livecompiler.New(pgas.TopName(4), codegen.StyleGrouped, nil)
	if _, err := c.Build(pgas.Source(4)); err != nil {
		b.Fatal(err)
	}
	edited, err := pgas.Changes[0].Apply(pgas.Source(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = c.Build(edited)
		} else {
			_, err = c.Build(pgas.Source(4))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8CompileFlat(b *testing.B) {
	srcs := map[string]*ast.Module{}
	for name, text := range pgas.DesignSource(4) {
		sf, err := parser.ParseFile(name, text)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range sf.Modules {
			srcs[m.Name] = m
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := elab.Elaborate(srcs, pgas.TopName(4), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flatsim.Compile(d, codegen.StyleMux); err != nil {
			b.Fatal(err)
		}
	}
}

// Section V-B: checkpoint capture cost (the stop-the-world part).
func BenchmarkCheckpointSnapshot(b *testing.B) {
	s := buildLiveSim(b, 4)
	if err := s.Tick(100); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.Snapshot()
		if st.Bytes() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// Figure 6: parallel consistency verification over checkpoint segments.
func BenchmarkFig6Verify(b *testing.B) {
	s := buildLiveSim(b, 1)
	store := checkpoint.NewStore()
	for i := 0; i < 9; i++ {
		store.Add(s.Snapshot(), "v0", 0)
		if err := s.Tick(200); err != nil {
			b.Fatal(err)
		}
	}
	cps := store.Before(1 << 62)
	objs, top, err := pgas.Build(1, codegen.StyleGrouped)
	if err != nil {
		b.Fatal(err)
	}
	replay := func(from *checkpoint.Checkpoint, to uint64) (*sim.State, error) {
		ps, err := sim.New(sim.ResolverFunc(func(k string) (*vm.Object, error) {
			if o, ok := objs[k]; ok {
				return o, nil
			}
			return nil, fmt.Errorf("no object %q", k)
		}), top)
		if err != nil {
			return nil, err
		}
		if err := ps.Restore(from.State); err != nil {
			return nil, err
		}
		if err := ps.Tick(int(to - from.Cycle)); err != nil {
			return nil, err
		}
		if err := ps.Settle(); err != nil {
			return nil, err
		}
		return ps.Snapshot(), nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Run(cps, replay, verify.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent() {
			b.Fatal("unexpected divergence")
		}
	}
}

// Ablation: codegen styles on the same design (Section V-A's if/else
// grouping claim).
func BenchmarkCodegenStyleGrouped(b *testing.B) { benchStyle(b, codegen.StyleGrouped) }
func BenchmarkCodegenStyleMux(b *testing.B)     { benchStyle(b, codegen.StyleMux) }

func benchStyle(b *testing.B, style codegen.Style) {
	objs, top, err := pgas.Build(1, style)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(sim.ResolverFunc(func(k string) (*vm.Object, error) {
		if o, ok := objs[k]; ok {
			return o, nil
		}
		return nil, fmt.Errorf("no object %q", k)
	}), top)
	if err != nil {
		b.Fatal(err)
	}
	images, err := pgas.ComputeImages(1, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	if err := pgas.LoadImage(s, 1, 0, images[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.Tick(b.N); err != nil {
		b.Fatal(err)
	}
}

// Microbenchmark: raw VM dispatch rate.
func BenchmarkVMExec(b *testing.B) {
	m := vm.Mask(32)
	obj := &vm.Object{
		Key: "bench", ModName: "bench", NumSlots: 8,
		Comb: []vm.Instr{
			{Op: vm.OpAdd, Dst: 2, A: 0, B: 1, Imm: m},
			{Op: vm.OpXor, Dst: 3, A: 2, B: 0},
			{Op: vm.OpShlImm, Dst: 4, A: 3, B: 5, Imm: m},
			{Op: vm.OpLtU, Dst: 5, A: 4, B: 1},
			{Op: vm.OpMux, Dst: 6, A: 5, B: 2, C: 3},
		},
	}
	inst := vm.NewInstance(obj)
	inst.Slots[0], inst.Slots[1] = 12345, 67890
	var st vm.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.RunComb(&st)
	}
}
