// Package livesim is a from-scratch reproduction of "LiveSim: A Fast Hot
// Reload Simulator for HDLs" (ISPASS 2020): a live programming and
// simulation environment for hardware designs.
//
// A Session owns compiled design objects (one per module specialization,
// shared by all instances), instantiated pipelines, journaled run history
// and checkpoints. The headline operation is ApplyChange: hand the session
// the edited source and it incrementally recompiles only the modules whose
// behaviour changed, hot-reloads the new objects under every running
// pipeline while migrating architectural state (rename/create/delete rules
// included), restores a checkpoint near the point of interest, re-runs to
// where the simulation was, and verifies older checkpoints against the new
// code on background workers.
//
// Quick start:
//
//	s := livesim.NewSession("top", livesim.Config{CheckpointEvery: 10_000})
//	s.LoadDesign(livesim.Source{Files: map[string]string{"top.v": src}})
//	s.RegisterTestbench("tb0", livesim.NewStatelessTB(drive))
//	s.InstPipe("p0")
//	s.Run("tb0", "p0", 1_000_000)
//	report, _ := s.ApplyChange(editedSource) // the 2-second ERD loop
//	report.WaitVerification()
//
// See the examples/ directory for complete programs, and DESIGN.md for the
// mapping from the paper's sections to packages.
package livesim

import (
	"io"

	"livesim/internal/codegen"
	"livesim/internal/core"
	"livesim/internal/faultinject"
	"livesim/internal/liveparser"
	"livesim/internal/obs"
	"livesim/internal/server"
	"livesim/internal/trace"
)

// Session is the LiveSim environment (Tables I-IV of the paper).
type Session = core.Session

// Config tunes a Session.
type Config = core.Config

// Pipe is one instantiated design with its history and checkpoints.
type Pipe = core.Pipe

// Driver is the interface testbenches use to drive a pipe.
type Driver = core.Driver

// Testbench drives a pipe deterministically and snapshots its own state.
type Testbench = core.Testbench

// TestbenchFactory creates fresh testbench instances.
type TestbenchFactory = core.TestbenchFactory

// ChangeReport is the outcome of one trip around the live ERD loop.
type ChangeReport = core.ChangeReport

// VerificationHandle tracks a background checkpoint-consistency check.
type VerificationHandle = core.VerificationHandle

// Health summarizes the session's robustness state: rollbacks, recovered
// testbench panics and background verification errors. Read it with
// Session.Health.
type Health = core.Health

// FaultPlan injects deterministic one-shot failures (compile errors, hot
// reload errors, checkpoint corruption, testbench panics) for robustness
// testing; pass one in Config.Faults. ErrInjected is the sentinel every
// injected failure wraps.
type FaultPlan = faultinject.Plan

// NewFaultPlan creates an empty fault plan (injects nothing until armed).
func NewFaultPlan() *FaultPlan { return faultinject.New() }

// ErrInjected marks errors produced by a FaultPlan.
var ErrInjected = faultinject.ErrInjected

// Source is a snapshot of design source text.
type Source = liveparser.Source

// LibEntry, PipeRow and StageRow are the rows of the paper's Tables II-IV.
type (
	LibEntry = core.LibEntry
	PipeRow  = core.PipeRow
	StageRow = core.StageRow
)

// Style selects the code-generation strategy.
type Style = codegen.Style

// Codegen styles: StyleGrouped is LiveSim's if/else-grouped lowering,
// StyleMux the Verilator-like branch-free lowering.
const (
	StyleGrouped = codegen.StyleGrouped
	StyleMux     = codegen.StyleMux
)

// Registry is the unified metrics registry every session layer reports
// into (compiler cache hits, checkpoint latencies, VM op counters,
// verification outcomes). Pass one in Config.Metrics, read it back with
// Session.Metrics, export it with Snapshot or WriteText.
type Registry = obs.Registry

// MetricsSnapshot is a point-in-time JSON-exportable registry capture.
type MetricsSnapshot = obs.Snapshot

// NewRegistry creates an empty metrics registry for Config.Metrics.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewSession creates a session for the named top-level module.
func NewSession(top string, cfg Config) *Session { return core.NewSession(top, cfg) }

// NewStatelessTB wraps a per-cycle drive function as a testbench factory.
func NewStatelessTB(onCycle func(d *Driver, cycle uint64) error) TestbenchFactory {
	return core.NewStatelessTB(onCycle)
}

// NewCountingTB wraps a per-step drive function (with a persisted step
// counter) as a testbench factory.
func NewCountingTB(onStep func(d *Driver, step uint64) error) TestbenchFactory {
	return core.NewCountingTB(onStep)
}

// Server hosts many concurrent sessions behind livesimd's wire protocol
// (newline-delimited JSON over TCP/unix sockets): per-session worker
// serialization, bounded queues with backpressure, request deadlines,
// idle eviction and graceful drain. Embed one instead of shelling out to
// cmd/livesimd when a program wants to serve sessions itself.
type Server = server.Server

// ServerConfig tunes a Server.
type ServerConfig = server.Config

// NewServer creates a session server; feed it listeners with Serve and
// stop it with Shutdown (the graceful drain).
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// ErrBackpressure is the typed rejection a Server returns when a
// session's bounded request queue is full.
var ErrBackpressure = server.ErrBackpressure

// Tracer streams a pipe's waveforms in VCD format.
type Tracer = trace.Tracer

// TraceFilter selects signals to trace by (instance path, signal name).
type TraceFilter = trace.Filter

// TraceAll, TraceUnder and TraceSignals build common trace filters.
func TraceAll() TraceFilter                    { return trace.All() }
func TraceUnder(prefix string) TraceFilter     { return trace.Under(prefix) }
func TraceSignals(names ...string) TraceFilter { return trace.Signals(names...) }

// NewTracer attaches a VCD tracer to a pipe. Call Sample after each
// Tick/Run step and Close when done.
func NewTracer(w io.Writer, p *Pipe, filter TraceFilter) (*Tracer, error) {
	return trace.New(w, p.Sim, filter)
}
